package lint

import (
	"strings"
	"testing"
)

// Fixtures for the value-flow analyzers (span-hygiene, hotpath-alloc,
// atomic-consistency, nil-receiver). Each fixture package carries
// flagging and passing cases per rule; the obs stand-in mirrors the
// real Span API closely enough that the path-suffix-keyed analyzers
// engage exactly as on the real tree.

func valueFlowFixtureFiles() map[string]string {
	return map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",

		// The obs stand-in doubles as the nil-receiver contract fixture:
		// End/Int/Str carry the required guard, Float forgot it, Int64
		// has no named receiver, and Name is outside the nil-safe set.
		"internal/obs/obs.go": `package obs

import "context"

// ctxKey is the context key for the current span.
type ctxKey struct{}

// Span is a minimal stand-in for the real tracing span.
type Span struct {
	name string
	n    int
}

// Start begins a span, or returns a nil one when name is empty.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if name == "" {
		return ctx, nil
	}
	s := &Span{name: name}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// End finishes the span: properly guarded, no finding.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.n = -1
}

// Int annotates the span: properly guarded, no finding.
func (s *Span) Int(key string, v int) {
	if s == nil {
		return
	}
	s.n = v
}

// Str annotates the span: properly guarded, no finding.
func (s *Span) Str(key, v string) {
	if s == nil {
		return
	}
	s.name = v
}

// Float is declared nil-safe but forgot its guard: contract finding.
func (s *Span) Float(key string, v float64) {
	s.n = int(v)
}

// Int64 has no named receiver, so it cannot guard: contract finding.
func (*Span) Int64(key string, v int64) {}

// Name is deliberately outside the nil-safe set.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}
`,

		// span-hygiene lifecycle cases.
		"internal/core/spans.go": `package core

import (
	"context"

	"fixturemod/internal/obs"
)

// GoodLinear starts, annotates, ends: no finding.
func GoodLinear(ctx context.Context) {
	_, sp := obs.Start(ctx, "a")
	sp.Int("k", 1)
	sp.End()
}

// GoodDefer ends through defer on every path: no finding.
func GoodDefer(ctx context.Context, cond bool) int {
	_, sp := obs.Start(ctx, "b")
	defer sp.End()
	if cond {
		return 1
	}
	return 0
}

// GoodEarlyReturn re-creates the promoter pattern: an explicit End
// before an early return, then a rebind whose End is deferred. The
// deferred End is registered after the early return, so neither a
// double End nor a rebind-leak may be reported.
func GoodEarlyReturn(ctx context.Context, cond bool) int {
	_, sp := obs.Start(ctx, "c1")
	sp.End()
	if cond {
		return 1
	}
	_, sp = obs.Start(ctx, "c2")
	defer sp.End()
	return 0
}

// BadLeakEarlyReturn leaks the span on the cond path: finding.
func BadLeakEarlyReturn(ctx context.Context, cond bool) int {
	_, sp := obs.Start(ctx, "d")
	if cond {
		return 1
	}
	sp.End()
	return 0
}

// BadDoubleEnd may End twice when cond holds: finding.
func BadDoubleEnd(ctx context.Context, cond bool) {
	_, sp := obs.Start(ctx, "e")
	if cond {
		sp.End()
	}
	sp.End()
}

// BadDeferDoubleEnd explicitly Ends a span whose End is already
// deferred on this path: finding.
func BadDeferDoubleEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "f")
	defer sp.End()
	sp.End()
}

// BadUseAfterEnd touches the span after End: finding.
func BadUseAfterEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "g")
	sp.End()
	sp.Int("k", 2)
}

// BadReassign rebinds a live span with no deferred End: finding.
func BadReassign(ctx context.Context) {
	_, sp := obs.Start(ctx, "h1")
	_, sp = obs.Start(ctx, "h2")
	sp.End()
}

// StartNamed returns the span, transferring ownership: no finding, and
// it becomes a span source for its callers.
func StartNamed(ctx context.Context, name string) *obs.Span {
	_, sp := obs.Start(ctx, name)
	return sp
}

// finish forwards its parameter to End: a span sink.
func finish(sp *obs.Span) {
	sp.End()
}

// GoodViaWrappers uses the wrapper source and sink: no finding.
func GoodViaWrappers(ctx context.Context) {
	sp := StartNamed(ctx, "i")
	finish(sp)
}

// BadWrapperLeak drops a wrapper-obtained span on the cond path:
// finding.
func BadWrapperLeak(ctx context.Context, cond bool) int {
	w := StartNamed(ctx, "j")
	if cond {
		return 1
	}
	finish(w)
	return 0
}
`,

		// nil-receiver call sites (contract cases live in the obs file).
		"internal/core/nilrecv.go": `package core

import (
	"context"

	"fixturemod/internal/obs"
)

// BadNameOnStartBound calls a non-nil-safe method on a Start-bound
// span: finding.
func BadNameOnStartBound(ctx context.Context) string {
	_, sp := obs.Start(ctx, "x")
	defer sp.End()
	return sp.Name()
}

// BadNameOnZeroVar calls through a var declared without a value:
// finding.
func BadNameOnZeroVar() string {
	var sp *obs.Span
	return sp.Name()
}

// AllowedGuardedName nil-checks first; the analysis is deliberately
// path-insensitive, so the call carries an allow: suppressed.
func AllowedGuardedName(ctx context.Context) string {
	_, sp := obs.Start(ctx, "z")
	defer sp.End()
	if sp == nil {
		return ""
	}
	//promolint:allow nil-receiver -- fixture: guarded by the nil check above
	return sp.Name()
}

// GoodFreshName calls Name on a freshly constructed span that cannot
// be nil: no finding.
func GoodFreshName() string {
	sp := &obs.Span{}
	return sp.Name()
}
`,

		// hotpath-alloc in an error-severity scope.
		"internal/centrality/hot.go": `package centrality

// HotMarked grows a fresh slice inside a hot body: finding.
//
//promolint:hotpath
func HotMarked(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// HotAllowed reuses a scratch buffer; the append carries a justified
// allow: suppressed.
//
//promolint:hotpath
func HotAllowed(buf, xs []int) []int {
	buf = buf[:0]
	for _, x := range xs {
		buf = append(buf, x) //promolint:allow hotpath-alloc -- amortized: scratch reaches steady-state capacity
	}
	return buf
}

// ColdUnmarked allocates outside any hot marker: no finding.
func ColdUnmarked(n int) []int { return make([]int, n) }

// HotStatement marks only its loop; the setup make above the marker is
// cold, the append inside is a finding.
func HotStatement(n int) []int {
	out := make([]int, 0, 1)
	//promolint:hotpath
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// helperAlloc allocates, so callers inherit a may-allocate summary.
func helperAlloc(n int) []int { return make([]int, n) }

// HotCallsAllocator calls an in-package allocator from hot code:
// finding.
//
//promolint:hotpath
func HotCallsAllocator(n int) []int {
	return helperAlloc(n)
}

// HotNoBox stores a pointer into an interface, which is pointer-shaped
// and does not box: no finding.
//
//promolint:hotpath
func HotNoBox(p *int) interface{} {
	var i interface{} = p
	return i
}

// HotBoxes stores an int64 into an interface, which heap-boxes:
// finding.
//
//promolint:hotpath
func HotBoxes(v int64) interface{} {
	var i interface{} = v
	return i
}
`,

		// hotpath-alloc outside the performance scopes: warn severity.
		"internal/report/hot.go": `package report

//promolint:hotpath
func WarmMarked(n int) map[int]bool {
	return make(map[int]bool, n)
}
`,

		// atomic-consistency: raw sync/atomic guards vs plain access.
		"internal/engine/atomics.go": `package engine

import "sync/atomic"

var hits uint64

// counters is the struct-field variant of the invariant.
type counters struct {
	calls uint64
	other int
}

// BumpAtomic is the access that marks hits as atomic-guarded.
func BumpAtomic() { atomic.AddUint64(&hits, 1) }

// ReadAtomic loads through sync/atomic: no finding.
func ReadAtomic() uint64 { return atomic.LoadUint64(&hits) }

// BadPlainRead reads the guarded package variable plainly: finding.
func BadPlainRead() uint64 { return hits }

// bumpField marks the calls field as atomic-guarded.
func (c *counters) bumpField() { atomic.AddUint64(&c.calls, 1) }

// BadPlainFieldWrite writes the guarded field plainly: finding.
func (c *counters) BadPlainFieldWrite() { c.calls = 0 }

// GoodOther touches an unguarded field freely: no finding.
func (c *counters) GoodOther() { c.other++ }
`,
	}
}

// lineFuncIn maps a diagnostic in the named fixture file to the
// enclosing function, or "" when the diagnostic is elsewhere.
func lineFuncIn(t *testing.T, files map[string]string, file string, d Diagnostic) string {
	t.Helper()
	if !strings.HasSuffix(d.Pos.Filename, file) {
		return ""
	}
	return fixtureLineFunc(t, files[file], d.Pos.Line)
}

// findingFuncs collects, per enclosing function of the named file, how
// many findings the analyzer produced there.
func findingFuncs(t *testing.T, diags []Diagnostic, files map[string]string, analyzer, file string) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, d := range diags {
		if d.Analyzer != analyzer {
			continue
		}
		if fn := lineFuncIn(t, files, file, d); fn != "" {
			out[fn]++
		}
	}
	return out
}

func TestSpanHygieneFixture(t *testing.T) {
	files := valueFlowFixtureFiles()
	diags := runFixture(t, files)
	got := findingFuncs(t, diags, files, "span-hygiene", "internal/core/spans.go")
	want := map[string]int{
		"BadLeakEarlyReturn": 1,
		"BadDoubleEnd":       1,
		"BadDeferDoubleEnd":  1,
		"BadUseAfterEnd":     1,
		"BadReassign":        1,
		"BadWrapperLeak":     1,
	}
	for fn, n := range want {
		if got[fn] != n {
			t.Errorf("span-hygiene in %s: want %d finding(s), got %d\n%s", fn, n, got[fn], renderDiags(diags))
		}
	}
	for fn := range got {
		if want[fn] == 0 {
			t.Errorf("span-hygiene flagged %s, which must stay clean\n%s", fn, renderDiags(diags))
		}
	}
	want1 := func(substr string) {
		t.Helper()
		n := 0
		for _, d := range diags {
			if d.Analyzer == "span-hygiene" && strings.Contains(d.Message, substr) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("want exactly 1 span-hygiene finding containing %q, got %d", substr, n)
		}
	}
	want1("explicit End plus deferred End") // BadDeferDoubleEnd
	want1("used after End")                 // BadUseAfterEnd
	want1("rebound while still live")       // BadReassign
}

func TestHotpathAllocFixture(t *testing.T) {
	files := valueFlowFixtureFiles()
	diags := runFixture(t, files)

	got := findingFuncs(t, diags, files, "hotpath-alloc", "internal/centrality/hot.go")
	want := map[string]int{
		"HotMarked":         1, // the growing append (var out []int is not a site)
		"HotStatement":      1, // only the append inside the marked loop
		"HotCallsAllocator": 1, // in-package may-allocate call
		"HotBoxes":          1, // int64 → interface boxing
	}
	for fn, n := range want {
		if got[fn] != n {
			t.Errorf("hotpath-alloc in %s: want %d finding(s), got %d\n%s", fn, n, got[fn], renderDiags(diags))
		}
	}
	for fn := range got {
		if want[fn] == 0 {
			t.Errorf("hotpath-alloc flagged %s, which must stay clean\n%s", fn, renderDiags(diags))
		}
	}

	// Severity contract: errors inside the performance scopes, warnings
	// outside them.
	for _, d := range diags {
		if d.Analyzer != "hotpath-alloc" {
			continue
		}
		switch {
		case strings.HasSuffix(d.Pos.Filename, "internal/centrality/hot.go"):
			if d.Severity != SevError {
				t.Errorf("hotpath-alloc finding in centrality must be %s, got %s: %s", SevError, d.Severity, d)
			}
		case strings.HasSuffix(d.Pos.Filename, "internal/report/hot.go"):
			if d.Severity != SevWarn {
				t.Errorf("hotpath-alloc finding in report must be %s, got %s: %s", SevWarn, d.Severity, d)
			}
		}
	}
	warm := findingFuncs(t, diags, files, "hotpath-alloc", "internal/report/hot.go")
	if warm["WarmMarked"] != 1 {
		t.Errorf("hotpath-alloc: want 1 warn finding in WarmMarked, got %d\n%s", warm["WarmMarked"], renderDiags(diags))
	}
}

func TestAtomicConsistencyFixture(t *testing.T) {
	files := valueFlowFixtureFiles()
	diags := runFixture(t, files)
	want(t, diags, "atomic-consistency", "variable hits")
	want(t, diags, "atomic-consistency", "field calls")
	got := findingFuncs(t, diags, files, "atomic-consistency", "internal/engine/atomics.go")
	for _, fn := range []string{"ReadAtomic", "BumpAtomic", "bumpField", "GoodOther"} {
		if got[fn] != 0 {
			t.Errorf("atomic-consistency flagged %s, which must stay clean\n%s", fn, renderDiags(diags))
		}
	}
}

func TestNilReceiverFixture(t *testing.T) {
	files := valueFlowFixtureFiles()
	diags := runFixture(t, files)

	// Contract side, in the defining package.
	want(t, diags, "nil-receiver", "Float", "must begin with")
	want(t, diags, "nil-receiver", "Int64", "no named receiver")

	// Call-site side.
	want(t, diags, "nil-receiver", "Name", "bound from obs.Start")
	want(t, diags, "nil-receiver", "Name", "declared without a value")

	got := findingFuncs(t, diags, files, "nil-receiver", "internal/core/nilrecv.go")
	for _, fn := range []string{"AllowedGuardedName", "GoodFreshName"} {
		if got[fn] != 0 {
			t.Errorf("nil-receiver flagged %s, which must stay clean\n%s", fn, renderDiags(diags))
		}
	}
	ob := findingFuncs(t, diags, files, "nil-receiver", "internal/obs/obs.go")
	for _, fn := range []string{"End", "Int", "Str", "Name"} {
		if ob[fn] != 0 {
			t.Errorf("nil-receiver flagged (*Span).%s in the defining package, which must stay clean\n%s", fn, renderDiags(diags))
		}
	}
}

// TestRunSurfacesParseErrors is the lint-layer half of the robustness
// contract: an unparseable file is an error return, never a panic.
func TestRunSurfacesParseErrors(t *testing.T) {
	root := writeFixture(t, map[string]string{
		"go.mod":    "module fixturemod\n\ngo 1.22\n",
		"broken.go": "package broken\n\nfunc Oops( {\n\tcase ???\n",
	})
	if _, err := Run(root, []string{"./..."}, Config{}); err == nil {
		t.Fatal("Run on an unparseable module must return an error, got nil")
	}
}
