package lint

import (
	"go/ast"
	"go/types"
)

// exportedDocs requires doc comments on the exported package-level API
// of the two packages other code builds on: internal/centrality and
// internal/core. Exported top-level functions, type declarations, and
// var/const specs without a doc comment (their own or their enclosing
// declaration group's) are flagged. Methods are exempt: the bulk of
// them implement the Measure interface, whose contract is documented
// once on the interface.
var exportedDocs = &Analyzer{
	Name:     "exported-docs",
	Doc:      "flag undocumented exported identifiers in internal/centrality, internal/engine, internal/core, internal/graph/csr, internal/obs, internal/gen, internal/promod, cmd/gengraph, cmd/promotrace, cmd/promod, and cmd/promoload",
	Severity: SevWarn,
	Run:      runExportedDocs,
}

func runExportedDocs(p *Pass) {
	if !p.relScope("internal/centrality", "internal/engine", "internal/core", "internal/graph/csr", "internal/obs", "internal/gen", "internal/promod", "cmd/gengraph", "cmd/promotrace", "cmd/promod", "cmd/promoload") {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				if decl.Recv != nil || !decl.Name.IsExported() || decl.Doc != nil {
					continue
				}
				p.Reportf(decl.Name.Pos(), "exported function %s has no doc comment", decl.Name.Name)
			case *ast.GenDecl:
				if decl.Doc != nil {
					continue // a group doc covers every spec in the block
				}
				for _, spec := range decl.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						if spec.Name.IsExported() && spec.Doc == nil && spec.Comment == nil {
							p.Reportf(spec.Name.Pos(), "exported type %s has no doc comment", spec.Name.Name)
						}
					case *ast.ValueSpec:
						if spec.Doc != nil || spec.Comment != nil {
							continue
						}
						for _, name := range spec.Names {
							if name.IsExported() {
								p.Reportf(name.Pos(), "exported %s %s has no doc comment", declKind(decl), name.Name)
							}
						}
					}
				}
			}
		}
	}
}

func declKind(decl *ast.GenDecl) string {
	switch decl.Tok.String() {
	case "const":
		return "const"
	case "var":
		return "var"
	default:
		return "declaration"
	}
}

// exprString renders an expression compactly for diagnostics.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}
