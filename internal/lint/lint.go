// Package lint is promonet's custom static-analysis suite. It enforces
// the repo-specific invariants that generic tooling cannot know about —
// most importantly the paper's black-box contract (promotion machinery
// must never mutate the host graph it is handed) and the determinism
// discipline the experiment reproductions depend on.
//
// The suite is built entirely on the standard library (go/ast,
// go/parser, go/token, go/types, go/build): packages are parsed and
// type-checked with a module-aware importer that resolves in-module
// imports from source and stdlib imports through the source importer,
// so no external package-loading dependency is needed.
//
// Findings can be suppressed where a rule is intentionally broken (for
// example, the strategy-application code whose whole purpose is to
// attach structure) with an annotation comment:
//
//	//promolint:allow mutation-safety -- reason for the exception
//
// placed in the doc comment of the enclosing function, on the flagged
// line, or on the line directly above it. The analyzer name is
// mandatory; a blanket allow does not exist by design.
package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Severity ranks a finding. Errors gate CI; warnings are advisory and
// never fail the promolint exit code on their own.
type Severity string

const (
	SevError Severity = "error"
	SevWarn  Severity = "warn"
)

// Diagnostic is one finding, addressable as file:line:col.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Severity Severity
	Message  string
}

// String renders the diagnostic in the conventional compiler format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single package and
// reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in allow annotations.
	Name string
	// Doc is a one-line description shown by promolint's analyzer list.
	Doc string
	// Severity classifies the analyzer's findings; empty means SevError.
	Severity Severity
	// Run executes the analyzer over one package.
	Run func(p *Pass)
}

func (a *Analyzer) severity() Severity {
	if a.Severity == "" {
		return SevError
	}
	return a.Severity
}

// Analyzers returns the full suite in stable order: the five syntactic
// analyzers from the first generation, then the four CFG/dataflow
// analyzers built on internal/lint/flow, then the four value-flow
// analyzers built on its reaching-defs/escape layer, then the three
// interprocedural analyzers built on its summary engine.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		mutationSafety,
		determinism,
		concurrency,
		ignoredErrors,
		exportedDocs,
		versionStamp,
		engineBypass,
		poolHygiene,
		lockOrder,
		spanHygiene,
		hotpathAlloc,
		atomicConsistency,
		nilReceiver,
		viewImmutability,
		goroutineLifecycle,
		snapshotAliasing,
	}
}

// Config selects which analyzers run. The zero value runs all of them.
type Config struct {
	// Enable lists analyzer names to run; empty means all.
	Enable []string
	// Disable lists analyzer names to skip; applied after Enable.
	Disable []string
	// Workers bounds the package-level fan-out; 0 means GOMAXPROCS, 1
	// runs fully serial. Findings and report bytes are identical at any
	// worker count — only wall time changes.
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer *Analyzer
	suppress *suppressionIndex
	out      *[]Diagnostic
}

// Reportf records a finding at pos unless an allow annotation covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.ReportSevf(p.analyzer.severity(), pos, format, args...)
}

// ReportSevf is Reportf with an explicit severity, for analyzers whose
// findings escalate by package scope (hotpath-alloc: warnings in
// general code, errors inside the kernel packages).
func (p *Pass) ReportSevf(sev Severity, pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.suppress.allows(position, p.analyzer.Name) {
		return
	}
	if sev == "" {
		sev = p.analyzer.severity()
	}
	*p.out = append(*p.out, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run loads the packages selected by patterns (each either a directory
// path or a "dir/..." wildcard; "./..." means the whole module) under
// the module rooted at moduleRoot and runs the analyzer suite over
// them. It returns the findings sorted by position.
//
// Every package is analyzed under two build configurations — the
// default one and again with the promodebug tag — so invariants hold in
// the debug build too; findings from files shared by both passes are
// deduplicated.
func Run(moduleRoot string, patterns []string, cfg Config) ([]Diagnostic, error) {
	diags, _, err := RunTimed(moduleRoot, patterns, cfg)
	return diags, err
}

// AnalyzerTiming is the cost of one analyzer across every package and
// both build-tag passes of a run. WallNanos is latest-finish minus
// earliest-start (what the user waits for under the parallel driver);
// CPUNanos is the per-run durations summed across packages, the
// worker-count-independent cost CI watches for regressions.
type AnalyzerTiming struct {
	Analyzer  string `json:"analyzer"`
	WallNanos int64  `json:"wall_nanos"`
	CPUNanos  int64  `json:"cpu_nanos"`
}

// lintUnit is one (build-tag pass, package) cell of a run: the work a
// single worker claims, and the bucket its results land in until the
// deterministic merge.
type lintUnit struct {
	loader *loader
	path   string
	pass   int // 0 = default tags, 1 = promodebug

	diags  []Diagnostic
	err    error
	starts []time.Time // per analyzer index; zero if the unit was skipped
	durs   []time.Duration
}

// RunTimed is Run plus per-analyzer timings, in suite order — the
// -json report carries them so CI can watch the suite's cost.
//
// Packages fan out over cfg.Workers goroutines (the loader coalesces
// shared dependencies behind futures), but findings are merged and
// deduplicated in the fixed (pass, sorted path) unit order and then
// position-sorted, so the output is byte-identical at any worker count.
func RunTimed(moduleRoot string, patterns []string, cfg Config) ([]Diagnostic, []AnalyzerTiming, error) {
	for _, name := range append(append([]string{}, cfg.Enable...), cfg.Disable...) {
		if !hasAnalyzer(name) {
			return nil, nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	enabled := make(map[string]bool)
	for _, name := range cfg.Enable {
		enabled[name] = true
	}
	disabled := make(map[string]bool)
	for _, name := range cfg.Disable {
		disabled[name] = true
	}
	var analyzers []*Analyzer
	for _, a := range Analyzers() {
		if (len(enabled) == 0 || enabled[a.Name]) && !disabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	// Every package is analyzed under two build configurations — the
	// default one and again with the promodebug tag — so invariants
	// hold in the debug build too.
	var units []*lintUnit
	for pass, tags := range [][]string{nil, {"promodebug"}} {
		l, err := newLoader(moduleRoot, tags...)
		if err != nil {
			return nil, nil, err
		}
		paths, err := resolvePatterns(l, moduleRoot, patterns)
		if err != nil {
			return nil, nil, err
		}
		for _, path := range paths {
			units = append(units, &lintUnit{loader: l, path: path, pass: pass})
		}
	}

	jobs := make(chan *lintUnit)
	workers := cfg.workers()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for u := range jobs {
				runUnit(u, analyzers)
			}
		}()
	}
	for _, u := range units {
		jobs <- u
	}
	close(jobs)
	wg.Wait()

	var diags []Diagnostic
	seen := make(map[string]bool)
	wallFrom := make(map[string]time.Time)
	wallTo := make(map[string]time.Time)
	cpu := make(map[string]time.Duration)
	for _, u := range units {
		if u.err != nil {
			// A package that only exists under the other tag set is not
			// an error on the promodebug pass.
			if u.pass > 0 && errors.Is(u.err, errNoGoFiles) {
				continue
			}
			return nil, nil, u.err
		}
		for i, a := range analyzers {
			from, to := u.starts[i], u.starts[i].Add(u.durs[i])
			if first, ok := wallFrom[a.Name]; !ok || from.Before(first) {
				wallFrom[a.Name] = from
			}
			if to.After(wallTo[a.Name]) {
				wallTo[a.Name] = to
			}
			cpu[a.Name] += u.durs[i]
		}
		for _, d := range u.diags {
			key := fmt.Sprintf("%s:%d:%d:%s:%s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	timings := make([]AnalyzerTiming, 0, len(analyzers))
	for _, a := range analyzers {
		timings = append(timings, AnalyzerTiming{
			Analyzer:  a.Name,
			WallNanos: wallTo[a.Name].Sub(wallFrom[a.Name]).Nanoseconds(),
			CPUNanos:  cpu[a.Name].Nanoseconds(),
		})
	}
	return diags, timings, nil
}

// runUnit loads one unit's package and runs the analyzer suite over it,
// filling the unit's result fields.
func runUnit(u *lintUnit, analyzers []*Analyzer) {
	pkg, err := u.loader.load(u.path)
	if err != nil {
		u.err = err
		return
	}
	supp := buildSuppressionIndex(u.loader.fset, pkg.Files)
	u.starts = make([]time.Time, len(analyzers))
	u.durs = make([]time.Duration, len(analyzers))
	for i, a := range analyzers {
		u.starts[i] = time.Now()
		a.Run(&Pass{
			Fset:     u.loader.fset,
			Pkg:      pkg,
			analyzer: a,
			suppress: supp,
			out:      &u.diags,
		})
		u.durs[i] = time.Since(u.starts[i])
	}
}

func hasAnalyzer(name string) bool {
	for _, a := range Analyzers() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// resolvePatterns expands the command-line package patterns into module
// import paths.
func resolvePatterns(l *loader, moduleRoot string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []string
	add := func(paths []string) {
		for _, p := range paths {
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			dir = strings.TrimSuffix(pat, "/...")
			if dir == "." || dir == "" {
				dir = moduleRoot
			}
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(moduleRoot, dir)
		}
		if recursive {
			paths, err := l.discover(dir)
			if err != nil {
				return nil, err
			}
			add(paths)
			continue
		}
		rel, err := filepath.Rel(moduleRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("lint: %s is outside module %s", pat, moduleRoot)
		}
		ip := l.modulePath
		if rel != "." {
			ip = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		add([]string{ip})
	}
	sort.Strings(out)
	return out, nil
}

// --- allow annotations ---

const allowMarker = "promolint:allow"

// suppressionIndex answers "is this (position, analyzer) covered by an
// allow annotation?" using two granularities: per-line annotations (on
// the flagged line or the line above) and per-function annotations in
// the doc comment of the enclosing declaration.
type suppressionIndex struct {
	// line maps filename -> line -> analyzers allowed on that line.
	line map[string]map[int]map[string]bool
	// funcs are declaration ranges whose doc comment allows analyzers.
	funcs []funcAllowance
}

type funcAllowance struct {
	file     string
	from, to int // line range of the declaration body
	allowed  map[string]bool
}

func buildSuppressionIndex(fset *token.FileSet, files []*ast.File) *suppressionIndex {
	idx := &suppressionIndex{line: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := idx.line[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx.line[pos.Filename] = byLine
				}
				// The annotation covers its own line and the next one, so
				// both end-of-line and preceding-line placements work.
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					if byLine[ln] == nil {
						byLine[ln] = make(map[string]bool)
					}
					for _, n := range names {
						byLine[ln][n] = true
					}
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			allowed := make(map[string]bool)
			for _, c := range fd.Doc.List {
				for _, n := range parseAllow(c.Text) {
					allowed[n] = true
				}
			}
			if len(allowed) == 0 {
				continue
			}
			from := fset.Position(fd.Pos())
			to := fset.Position(fd.End())
			idx.funcs = append(idx.funcs, funcAllowance{
				file: from.Filename, from: from.Line, to: to.Line, allowed: allowed,
			})
		}
	}
	return idx
}

// parseAllow extracts analyzer names from a "//promolint:allow a,b --
// reason" comment, returning nil if the comment is not an annotation.
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowMarker) {
		return nil
	}
	rest := strings.TrimPrefix(text, allowMarker)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. "promolint:allowx" is not an annotation
	}
	rest = strings.TrimSpace(rest)
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}
	var names []string
	for _, f := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if f != "" {
			names = append(names, f)
		}
	}
	return names
}

func (s *suppressionIndex) allows(pos token.Position, analyzer string) bool {
	if byLine, ok := s.line[pos.Filename]; ok {
		if set, ok := byLine[pos.Line]; ok && set[analyzer] {
			return true
		}
	}
	for _, fa := range s.funcs {
		if fa.file == pos.Filename && fa.from <= pos.Line && pos.Line <= fa.to && fa.allowed[analyzer] {
			return true
		}
	}
	return false
}

// --- shared helpers for the analyzers ---

// relScope reports whether the package's module-relative path is inside
// any of the given scopes (exact match or subdirectory).
func (p *Pass) relScope(scopes ...string) bool {
	for _, s := range scopes {
		if p.Pkg.Rel == s || strings.HasPrefix(p.Pkg.Rel, s+"/") {
			return true
		}
	}
	return false
}
