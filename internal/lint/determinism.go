package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinism guards the reproducibility the experiment tables depend
// on (EXPERIMENTS.md re-derives the paper's Tables V-VIII from fixed
// seeds). Two failure modes are flagged:
//
//  1. Global math/rand state: calls to the package-level math/rand
//     functions (rand.Intn, rand.Shuffle, ...) anywhere outside test
//     files. All randomness must flow through an explicit *rand.Rand so
//     a seed fully determines a run.
//  2. Order-dependent map iteration in the experiment/CLI layer
//     (internal/exp and cmd/...): a `range` over a map whose body
//     appends to a slice or prints output, without a subsequent
//     sort of the collected slice in the same function.
var determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag global math/rand use and order-dependent map iteration in experiment code",
	Run:  runDeterminism,
}

// randConstructors are the math/rand identifiers that are fine to use
// anywhere: they build explicit generators rather than touching the
// package-level global source. Type names (Rand, Source, Zipf, ...)
// also resolve through the package selector and are harmless.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors, should the module migrate.
	"NewPCG":     true,
	"NewChaCha8": true,
}

func runDeterminism(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			p.Reportf(call.Pos(),
				"call to global math/rand function %s.%s — thread an explicit *rand.Rand so experiment reruns are reproducible from a seed",
				id.Name, sel.Sel.Name)
			return true
		})
	}

	if !p.relScope("internal/exp", "cmd") {
		return
	}
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(p, fd)
		}
	}
}

// checkMapRanges flags `range` statements over maps inside fd whose
// body has order-dependent effects (appending to a slice that is never
// sorted afterwards in fd, or writing output directly).
func checkMapRanges(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}

		appended, writesOutput := mapRangeEffects(info, rng.Body)
		if writesOutput {
			p.Reportf(rng.Pos(),
				"range over map %s writes output in nondeterministic order — collect and sort keys first",
				exprString(rng.X))
			return true
		}
		for _, target := range appended {
			if !sortedAfter(info, fd, rng, target) {
				p.Reportf(rng.Pos(),
					"range over map %s appends to %s in nondeterministic order without a following sort",
					exprString(rng.X), target)
			}
		}
		return true
	})
}

// mapRangeEffects scans a map-range body for order-dependent effects:
// the names of slice variables appended to, and whether output is
// written directly (fmt print family).
func mapRangeEffects(info *types.Info, body *ast.BlockStmt) (appended []string, writesOutput bool) {
	seen := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				fun, ok := call.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" {
					continue
				}
				if _, isBuiltin := info.Uses[fun].(*types.Builtin); !isBuiltin {
					continue
				}
				if i < len(n.Lhs) {
					name := exprString(n.Lhs[i])
					if name != "_" && !seen[name] {
						seen[name] = true
						appended = append(appended, name)
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if pkgName, ok := info.Uses[id].(*types.PkgName); ok &&
						pkgName.Imported().Path() == "fmt" &&
						strings.HasPrefix(sel.Sel.Name, "Print") {
						writesOutput = true
					}
					if pkgName, ok := info.Uses[id].(*types.PkgName); ok &&
						pkgName.Imported().Path() == "fmt" &&
						strings.HasPrefix(sel.Sel.Name, "Fprint") {
						writesOutput = true
					}
				}
			}
		}
		return true
	})
	return appended, writesOutput
}

// sortedAfter reports whether fd contains, after the range statement, a
// call into the sort or slices packages that mentions target.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pkgName.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if strings.Contains(exprString(arg), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
