package lint

// Report is the machine-readable form of one promolint run, emitted by
// the -json flag and archived as a CI artifact. Paths are
// module-relative so reports diff cleanly across checkouts.
type Report struct {
	// Analyzers names every analyzer that ran, in suite order.
	Analyzers []string `json:"analyzers"`
	// Findings are the diagnostics that survived allow annotations and
	// the baseline, sorted by position.
	Findings []ReportFinding `json:"findings"`
	// Stale lists baseline entries that matched no current finding.
	Stale []BaselineEntry `json:"stale,omitempty"`
	// Timings is the per-analyzer wall-clock cost of the run, in suite
	// order (omitted when the caller did not collect timings).
	Timings []AnalyzerTiming `json:"timings,omitempty"`
}

// ReportFinding is one finding in a Report.
type ReportFinding struct {
	File     string   `json:"file"` // module-relative, slash-separated
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
}

// NewReport assembles a Report from a run's surviving diagnostics and
// the stale baseline entries, relativizing paths against moduleRoot.
func NewReport(moduleRoot string, analyzers []*Analyzer, diags []Diagnostic, stale []BaselineEntry) *Report {
	r := &Report{Findings: []ReportFinding{}, Stale: stale}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	for _, d := range diags {
		r.Findings = append(r.Findings, ReportFinding{
			File:     baselineRel(moduleRoot, d.Pos.Filename),
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Severity: d.Severity,
			Message:  d.Message,
		})
	}
	return r
}
