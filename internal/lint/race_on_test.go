//go:build race

package lint

// raceEnabled reports whether the race detector is compiled in. The
// mutation acceptance tests loop over every real guarded site, and each
// iteration is a full load+typecheck+analyze pass that costs several
// times more under -race; with the detector on they trim to one
// representative site per analyzer. The plain and promodebug test
// passes still exercise every site.
const raceEnabled = true
