package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mutatingGraphMethods are the methods of the mutable graph backends
// (*graph.Graph and *csr.Overlay share this mutation surface) that
// change the structure. Calling any of them on a graph received as a
// parameter violates the black-box read-only contract.
var mutatingGraphMethods = map[string]bool{
	"AddEdge":    true,
	"RemoveEdge": true,
	"AddNode":    true,
	"AddNodes":   true,
}

// mutationSafety enforces the paper's black-box contract: code in the
// measurement, baseline, backend, observability, and generator
// packages (internal/centrality, internal/engine, internal/core,
// internal/greedy, internal/graph/csr, internal/obs, internal/gen,
// cmd/gengraph) receives the host graph read-only. Any mutating method
// call on a *graph.Graph or *csr.Overlay parameter is flagged;
// mutating a local clone or overlay is fine, and graph.View parameters
// are mutation-free by construction. Strategy-application code — whose
// whole job is to attach structure, the generators included — opts out
// explicitly with //promolint:allow mutation-safety.
var mutationSafety = &Analyzer{
	Name: "mutation-safety",
	Doc:  "flag mutating graph-backend method calls on function parameters in read-only packages",
	Run:  runMutationSafety,
}

func runMutationSafety(p *Pass) {
	if !p.relScope("internal/centrality", "internal/engine", "internal/core", "internal/greedy", "internal/graph/csr", "internal/obs", "internal/gen", "internal/promod", "cmd/gengraph", "cmd/promod") {
		return
	}
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := graphParams(info, fd)
			if len(params) == 0 {
				continue
			}
			funcName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !mutatingGraphMethods[sel.Sel.Name] {
					return true
				}
				recv, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := info.Uses[recv]; obj != nil && params[obj] {
					p.Reportf(call.Pos(),
						"%s mutates its graph parameter %q via %s — the black-box contract requires treating the host as read-only (clone first, or annotate strategy code with //promolint:allow mutation-safety)",
						funcName, recv.Name, sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// graphParams returns the set of objects bound to mutable-graph-typed
// (*graph.Graph or *csr.Overlay) parameters (including the receiver)
// of fd.
func graphParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			for _, name := range field.Names {
				obj := info.Defs[name]
				if obj != nil && isGraphPointer(obj.Type()) {
					out[obj] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

// isGraphPointer reports whether t is a pointer to one of the mutable
// graph backends: the named type Graph of a package whose import path
// ends in "internal/graph", or the named type Overlay of a package
// whose import path ends in "internal/graph/csr". (The frozen Snapshot
// has no mutating methods, so it needs no guarding.)
func isGraphPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "Graph":
		return path == "internal/graph" || strings.HasSuffix(path, "/internal/graph")
	case "Overlay":
		return path == "internal/graph/csr" || strings.HasSuffix(path, "/internal/graph/csr")
	}
	return false
}
