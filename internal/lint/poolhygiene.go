package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"promonet/internal/lint/flow"
)

// poolHygiene checks sync.Pool ownership discipline everywhere in the
// module: a value obtained from a Pool.Get (directly or through a
// package-local getter like the engine's getKernel) must be handed back
// by exactly one Put on every path, and must never be touched again —
// used, returned, sent, or captured — after it went back to the pool.
// A leaked kernel quietly degrades the engine to allocate-per-call; a
// double Put or use-after-Put aliases one scratch buffer across two
// concurrent BFS sweeps, which corrupts scores instead of crashing.
//
// Transferring ownership before the Put is legitimate and ends
// tracking: returning the value (a getter wrapper), storing it into a
// captured or heap location (the engine parks per-worker kernels in a
// shared slice and puts them after the barrier), or sending it away.
var poolHygiene = &Analyzer{
	Name:     "pool-hygiene",
	Doc:      "flag sync.Pool values that leak, are Put twice, or are used after Put",
	Severity: SevError,
	Run:      runPoolHygiene,
}

// Pool-hygiene dataflow bits. Escape clears both: ownership moved.
const (
	phLive uint64 = 1 << iota // obtained, not yet Put
	phPut                     // handed back to the pool
)

func runPoolHygiene(p *Pass) {
	info := p.Pkg.Info
	sources, sinks := poolWrappers(p)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkPoolBody(p, info, body, sources, sinks)
			})
		}
	}
}

// forEachFuncBody calls fn on body and on the body of every function
// literal nested inside it (each literal is its own dataflow unit).
func forEachFuncBody(body *ast.BlockStmt, fn func(*ast.BlockStmt)) {
	fn(body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			if lit.Body != nil {
				forEachFuncBody(lit.Body, fn)
			}
			return false
		}
		return true
	})
}

// isPoolMethod reports whether call invokes method name on a sync.Pool
// (or *sync.Pool) receiver.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	callee := flow.Callee(info, call)
	if callee == nil || callee.Name() != name {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// poolWrappers computes, by fixpoint over the package, the functions
// that act as pool sources (return a value that came from a Get) and
// pool sinks (pass a parameter on to a Put).
func poolWrappers(p *Pass) (sources, sinks map[*types.Func]bool) {
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)
	sources = make(map[*types.Func]bool)
	sinks = make(map[*types.Func]bool)

	isSourceCall := func(call *ast.CallExpr) bool {
		if isPoolMethod(info, call, "Get") {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sources[callee]
	}
	isSinkCall := func(call *ast.CallExpr) bool {
		if isPoolMethod(info, call, "Put") {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sinks[callee]
	}

	for changed := true; changed; {
		changed = false
		for f, fd := range cg.Decls {
			if !sources[f] && returnsPoolValue(info, fd, isSourceCall) {
				sources[f] = true
				changed = true
			}
			if !sinks[f] && forwardsParamToSink(info, fd, isSinkCall) {
				sinks[f] = true
				changed = true
			}
		}
	}
	return sources, sinks
}

// returnsPoolValue reports whether fd can return a value derived from a
// pool source call: either a return of the call expression itself
// (possibly type-asserted) or of a local variable bound to one.
func returnsPoolValue(info *types.Info, fd *ast.FuncDecl, isSourceCall func(*ast.CallExpr) bool) bool {
	poolVars := make(map[types.Object]bool)
	flow.WalkNodes(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			if call := sourceExprCall(rhs, isSourceCall); call != nil && i < len(assign.Lhs) {
				if id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						poolVars[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						poolVars[obj] = true
					}
				}
			}
		}
		return true
	})
	found := false
	flow.WalkNodes(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if sourceExprCall(res, isSourceCall) != nil {
				found = true
			}
			if id, ok := ast.Unparen(res).(*ast.Ident); ok && poolVars[info.Uses[id]] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sourceExprCall unwraps parens and type assertions around e and
// returns the underlying pool source call, if any. A comma-ok type
// assertion also counts here — the wrapper still hands out pool values.
func sourceExprCall(e ast.Expr, isSourceCall func(*ast.CallExpr) bool) *ast.CallExpr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		case *ast.CallExpr:
			if isSourceCall(t) {
				return t
			}
			return nil
		default:
			return nil
		}
	}
}

// forwardsParamToSink reports whether fd passes one of its parameters
// straight to a pool sink call.
func forwardsParamToSink(info *types.Info, fd *ast.FuncDecl, isSinkCall func(*ast.CallExpr) bool) bool {
	params := make(map[types.Object]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if len(params) == 0 {
		return false
	}
	found := false
	flow.WalkNodes(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSinkCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && params[info.Uses[id]] {
				found = true
			}
		}
		return !found
	})
	return found
}

// trackedPoolVar is one Get-bound local under analysis.
type trackedPoolVar struct {
	obj    types.Object
	def    *ast.AssignStmt // the defining assignment
	defPos token.Pos
}

// checkPoolBody runs the ownership analysis over one function body.
func checkPoolBody(p *Pass, info *types.Info, body *ast.BlockStmt, sources, sinks map[*types.Func]bool) {
	isSourceCall := func(call *ast.CallExpr) bool {
		if isPoolMethod(info, call, "Get") {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sources[callee]
	}
	isSinkCall := func(call *ast.CallExpr) bool {
		if isPoolMethod(info, call, "Put") {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sinks[callee]
	}

	// Collect tracked vars: simple `v := <source>()` bindings in THIS
	// body (not in nested literals), including single-value type asserts
	// (`pool.Get().(*T)` panics rather than yielding a zero value).
	// Comma-ok asserts are excluded by the tuple check: on the failed
	// path the variable holds a zero value, which only a path-sensitive
	// analysis could separate.
	var tracked []*trackedPoolVar
	flow.WalkNodes(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(assign.Lhs) != len(assign.Rhs) {
			return true // tuple form: comma-ok or multi-return
		}
		for i, rhs := range assign.Rhs {
			call := sourceExprCall(rhs, isSourceCall)
			if call == nil {
				continue
			}
			id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				tracked = append(tracked, &trackedPoolVar{obj: obj, def: assign, defPos: assign.Pos()})
			}
		}
		return true
	})

	if len(tracked) == 0 {
		return
	}
	cfg := flow.New(body, info)
	for _, tv := range tracked {
		checkPoolVar(p, info, cfg, tv, isSinkCall)
	}
}

// poolEvent is one ordered occurrence of the tracked variable.
type poolEvent int

const (
	evDef    poolEvent = iota // the defining Get assignment
	evPut                     // passed to a Put/sink
	evEscape                  // returned, sent, stored, or captured
	evUse                     // any other read
)

// poolVarEvents walks one CFG node and yields the tracked variable's
// events in source order. Nested function literals are scanned only for
// captures of the variable (an escape or use-after-put), not for their
// inner flow.
func poolVarEvents(info *types.Info, node ast.Node, tv *trackedPoolVar,
	isSinkCall func(*ast.CallExpr) bool, yield func(ev poolEvent, pos token.Pos)) {
	skip := make(map[*ast.Ident]bool)
	usesVar := func(e ast.Expr) *ast.Ident {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if ok && info.Uses[id] == tv.obj {
			return id
		}
		return nil
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred puts run at function exit — checkPoolVar applies
			// them there via cfg.Defers, not inline. A deferred closure
			// capturing the variable takes ownership.
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				captured := false
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && info.Uses[id] == tv.obj {
						captured = true
					}
					return !captured
				})
				if captured {
					yield(evEscape, n.Pos())
				}
			}
			return false
		case *ast.FuncLit:
			// A closure capturing the variable shares ownership.
			captured := false
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == tv.obj {
					captured = true
				}
				return !captured
			})
			if captured {
				yield(evEscape, n.Pos())
			}
			return false
		case *ast.AssignStmt:
			if n == tv.def {
				// Mark the defining identifiers so the generic use pass
				// below does not double-count them.
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						skip[id] = true
					}
				}
				yield(evDef, n.Pos())
				return true
			}
			// Storing the value anywhere transfers ownership.
			for _, rhs := range n.Rhs {
				if id := usesVar(rhs); id != nil {
					skip[id] = true
					yield(evEscape, n.Pos())
				}
			}
			return true
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id := usesVar(res); id != nil {
					skip[id] = true
					yield(evEscape, n.Pos())
				}
			}
			return true
		case *ast.SendStmt:
			if id := usesVar(n.Value); id != nil {
				skip[id] = true
				yield(evEscape, n.Pos())
			}
			return true
		case *ast.CallExpr:
			if isSinkCall(n) {
				for _, arg := range n.Args {
					if id := usesVar(arg); id != nil {
						skip[id] = true
						yield(evPut, n.Pos())
					}
				}
			}
			return true
		case *ast.Ident:
			if info.Uses[n] == tv.obj && !skip[n] {
				yield(evUse, n.Pos())
			}
			return true
		}
		return true
	})
}

// checkPoolVar solves and reports the {live, put} ownership states of
// one tracked variable over the CFG.
func checkPoolVar(p *Pass, info *types.Info, cfg *flow.CFG, tv *trackedPoolVar, isSinkCall func(*ast.CallExpr) bool) {
	apply := func(state uint64, ev poolEvent) uint64 {
		switch ev {
		case evDef:
			return phLive
		case evPut:
			return (state &^ phLive) | phPut
		case evEscape:
			return 0
		}
		return state
	}
	trans := func(b *flow.Block, in uint64) uint64 {
		state := in
		for _, node := range b.Nodes {
			poolVarEvents(info, node, tv, isSinkCall, func(ev poolEvent, pos token.Pos) {
				state = apply(state, ev)
			})
		}
		return state
	}
	in := cfg.Solve(0, trans)

	// deferredPuts: defer statements that put this variable back.
	var deferredPuts []*ast.DeferStmt
	for _, d := range cfg.Defers {
		if !isSinkCall(d.Call) {
			continue
		}
		for _, arg := range d.Call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == tv.obj {
				deferredPuts = append(deferredPuts, d)
			}
		}
	}

	reported := make(map[token.Pos]bool)
	reportf := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		p.Reportf(pos, format, args...)
	}

	name := tv.obj.Name()
	for _, b := range cfg.Blocks {
		start, reached := in[b]
		if !reached {
			continue
		}
		state := start
		var lastReturn *ast.ReturnStmt
		for _, node := range b.Nodes {
			poolVarEvents(info, node, tv, isSinkCall, func(ev poolEvent, pos token.Pos) {
				switch ev {
				case evPut:
					// The PUT bit can only arrive over a path that already
					// put: any further Put is a may-double-put.
					if state&phPut != 0 {
						reportf(pos, "pool value %q may be Put twice — a second Put aliases one scratch buffer across two users", name)
					}
				case evEscape:
					if state&phPut != 0 && state&phLive == 0 {
						reportf(pos, "pool value %q escapes after it was Put — the pool may hand it to a concurrent user", name)
					}
				case evUse:
					if state&phPut != 0 && state&phLive == 0 {
						reportf(pos, "pool value %q used after it was Put — the pool may hand it to a concurrent user", name)
					}
				}
				state = apply(state, ev)
			})
			if ret, ok := node.(*ast.ReturnStmt); ok {
				lastReturn = ret
			}
		}
		if !linksTo(b, cfg.Exit) {
			continue
		}
		// Exit: deferred puts run now, then the value must be put.
		for _, d := range deferredPuts {
			if state&phPut != 0 {
				reportf(d.Pos(), "pool value %q may be Put twice (explicit Put plus deferred Put)", name)
			}
			state = apply(state, evPut)
		}
		if state&phLive != 0 {
			pos := cfg.End - 1
			if lastReturn != nil {
				pos = lastReturn.Pos()
			}
			reportf(pos, "pool value %q can reach this return without a Put — the kernel leaks and the pool refills by allocation", name)
		}
	}
}
