package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the full import path, e.g. "promonet/internal/centrality".
	Path string
	// Rel is the import path relative to the module root, e.g.
	// "internal/centrality" ("" for the module root package). Analyzer
	// scoping keys off Rel so that test fixtures with a different module
	// name behave identically to the real tree.
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed non-test files that matched build constraints.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// loader parses and type-checks module-local packages, resolving
// module-internal imports from the source tree and everything else
// through the stdlib source importer. It deliberately avoids any
// external package-loading dependency: go/parser + go/types + go/build
// (for file matching) are all it uses.
type loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	ctx        build.Context
	std        types.Importer
	pkgs       map[string]*Package // keyed by import path
	loading    map[string]bool     // cycle guard (should be impossible in valid Go)
}

// newLoader builds a loader for the module. Extra build tags (e.g.
// "promodebug") widen file matching so tag-gated files are analyzed
// alongside the default set.
func newLoader(moduleRoot string, tags ...string) (*loader, error) {
	modPath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.BuildTags = append(append([]string{}, ctx.BuildTags...), tags...)
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modPath,
		ctx:        ctx,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// errNoGoFiles marks a directory with no files matching the loader's
// build constraints; Run tolerates it on the secondary tag pass.
var errNoGoFiles = errors.New("no buildable Go files")

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module directive in %s", gomod)
	}
	return string(m[1]), nil
}

// Import implements types.Importer: module-local packages come from the
// source tree, everything else from the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the module package with the given import
// path, memoizing the result.
func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %w in %s", errNoGoFiles, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}

	pkg := &Package{
		Path:  path,
		Rel:   rel,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of dir that match the current
// build constraints, in sorted filename order for deterministic output.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: matching %s: %w", filepath.Join(dir, name), err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// discover walks the module tree and returns the import paths of every
// buildable package under root (skipping vendor, testdata, hidden and
// underscore directories).
func (l *loader) discover(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := hasBuildableGo(l.ctx, p)
		if err != nil {
			return err
		}
		if hasGo {
			rel, err := filepath.Rel(l.moduleRoot, p)
			if err != nil {
				return err
			}
			ip := l.modulePath
			if rel != "." {
				ip = l.modulePath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasBuildableGo(ctx build.Context, dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if match, err := ctx.MatchFile(dir, name); err == nil && match {
			return true, nil
		}
	}
	return false, nil
}
