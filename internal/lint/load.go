package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	// Path is the full import path, e.g. "promonet/internal/centrality".
	Path string
	// Rel is the import path relative to the module root, e.g.
	// "internal/centrality" ("" for the module root package). Analyzer
	// scoping keys off Rel so that test fixtures with a different module
	// name behave identically to the real tree.
	Rel string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed non-test files that matched build constraints.
	Files []*ast.File
	// Types and Info hold the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// loader parses and type-checks module-local packages, resolving
// module-internal imports from the source tree and everything else
// through the stdlib source importer. It deliberately avoids any
// external package-loading dependency: go/parser + go/types + go/build
// (for file matching) are all it uses.
//
// The loader is safe for concurrent load calls: each import path is
// type-checked exactly once behind a future, concurrent requests for an
// in-flight path wait on it, and the stdlib source importer (which is
// not thread-safe) is serialized behind its own mutex. token.FileSet is
// already safe for concurrent AddFile/Position use.
type loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	ctx        build.Context

	std   types.Importer
	stdMu sync.Mutex

	mu      sync.Mutex
	futures map[string]*pkgFuture // keyed by import path
}

// pkgFuture is the single-flight slot for one package: the first
// goroutine to request a path fills it, everyone else waits on done.
type pkgFuture struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// newLoader builds a loader for the module. Extra build tags (e.g.
// "promodebug") widen file matching so tag-gated files are analyzed
// alongside the default set.
func newLoader(moduleRoot string, tags ...string) (*loader, error) {
	modPath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.BuildTags = append(append([]string{}, ctx.BuildTags...), tags...)
	fset := token.NewFileSet()
	return &loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modPath,
		ctx:        ctx,
		std:        importer.ForCompiler(fset, "source", nil),
		futures:    make(map[string]*pkgFuture),
	}, nil
}

// errNoGoFiles marks a directory with no files matching the loader's
// build constraints; Run tolerates it on the secondary tag pass.
var errNoGoFiles = errors.New("no buildable Go files")

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("lint: no module directive in %s", gomod)
	}
	return string(m[1]), nil
}

// Import implements types.Importer: module-local packages come from the
// source tree, everything else from the stdlib source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return chainImporter{l: l}.Import(path)
}

// stdImport serializes the stdlib source importer, which keeps
// unsynchronized internal caches.
func (l *loader) stdImport(path string) (*types.Package, error) {
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// chainImporter is the importer handed to go/types while one package is
// being checked. chain holds the import paths currently open on this
// load chain, which is how cycles are detected: futures alone would
// turn a cycle into a deadlock (the chain would wait on its own open
// future), so the check must happen before waiting.
type chainImporter struct {
	l     *loader
	chain map[string]bool
}

func (ci chainImporter) Import(path string) (*types.Package, error) {
	l := ci.l
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		if ci.chain[path] {
			return nil, fmt.Errorf("lint: import cycle through %q", path)
		}
		pkg, err := l.loadChain(ci.chain, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.stdImport(path)
}

// load parses and type-checks the module package with the given import
// path, memoizing the result. Safe for concurrent use.
func (l *loader) load(path string) (*Package, error) {
	return l.loadChain(nil, path)
}

// loadChain is load with the caller's open-import chain threaded
// through for cycle detection. Concurrent requests for the same path
// coalesce onto one future; module imports form a DAG, so a waiter
// always makes progress once cycles are ruled out by the chain check.
func (l *loader) loadChain(chain map[string]bool, path string) (*Package, error) {
	l.mu.Lock()
	if fut, ok := l.futures[path]; ok {
		l.mu.Unlock()
		<-fut.done
		return fut.pkg, fut.err
	}
	fut := &pkgFuture{done: make(chan struct{})}
	l.futures[path] = fut
	l.mu.Unlock()

	fut.pkg, fut.err = l.loadUncached(chain, path)
	close(fut.done)
	return fut.pkg, fut.err
}

func (l *loader) loadUncached(chain map[string]bool, path string) (*Package, error) {
	sub := make(map[string]bool, len(chain)+1)
	for p := range chain {
		sub[p] = true
	}
	sub[path] = true

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: %w in %s", errNoGoFiles, dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: chainImporter{l: l, chain: sub},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}

	return &Package{
		Path:  path,
		Rel:   rel,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// parseDir parses the non-test Go files of dir that match the current
// build constraints, in sorted filename order for deterministic output.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctx.MatchFile(dir, name)
		if err != nil {
			return nil, fmt.Errorf("lint: matching %s: %w", filepath.Join(dir, name), err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// discover walks the module tree and returns the import paths of every
// buildable package under root (skipping vendor, testdata, hidden and
// underscore directories).
func (l *loader) discover(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata") {
			return filepath.SkipDir
		}
		hasGo, err := hasBuildableGo(l.ctx, p)
		if err != nil {
			return err
		}
		if hasGo {
			rel, err := filepath.Rel(l.moduleRoot, p)
			if err != nil {
				return err
			}
			ip := l.modulePath
			if rel != "." {
				ip = l.modulePath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasBuildableGo(ctx build.Context, dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if match, err := ctx.MatchFile(dir, name); err == nil && match {
			return true, nil
		}
	}
	return false, nil
}
