package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"promonet/internal/lint/flow"
)

// lockOrder guards the engine's two-mutex world (the memo-table mutex
// and the stats mutex) and whatever internal/graph grows next: it
// derives the package's mutex-acquisition order from every function's
// CFG — including acquisitions reached through package-local calls —
// and flags (1) paths that can return while still holding a lock,
// (2) acquiring the same exclusive mutex twice (sync.Mutex is not
// reentrant: that is a self-deadlock, not a no-op), and (3) cycles in
// the acquisition order (an AB/BA pair deadlocks under concurrency the
// race detector cannot reliably provoke).
//
// Lock identities are type-qualified field paths ("engine.Engine.mu"),
// so two methods locking the same field agree on the identity even
// through different receiver names. The order graph is per package —
// the two scoped packages do not share mutexes today; if they ever do,
// widen the scope before relying on it.
var lockOrder = &Analyzer{
	Name:     "lock-order",
	Doc:      "flag lock/unlock imbalance, double acquisition, and acquisition-order cycles in internal/engine and internal/graph",
	Severity: SevError,
	Run:      runLockOrder,
}

func runLockOrder(p *Pass) {
	if !p.relScope("internal/engine", "internal/graph") {
		return
	}
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)

	// acquires[f] is the set of lock identities f may take, directly or
	// through package-local calls (fixpoint).
	acquires := make(map[*types.Func]map[string]bool)
	for f, fd := range cg.Decls {
		set := make(map[string]bool)
		flow.WalkNodes(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, op := mutexOp(info, call); op == opLock || op == opRLock {
					set[id] = true
				}
			}
			return true
		})
		acquires[f] = set
	}
	for changed := true; changed; {
		changed = false
		for f := range cg.Decls {
			for callee, calleeSet := range acquires {
				if f == callee || !cg.Calls(f, callee) {
					continue
				}
				for id := range calleeSet {
					if !acquires[f][id] {
						acquires[f][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Per-function analysis: balance + double-lock, and order edges.
	edges := make(map[[2]string]token.Pos)
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			forEachFuncBody(fd.Body, func(body *ast.BlockStmt) {
				checkLockBody(p, info, body, acquires, edges)
			})
		}
	}

	reportLockCycles(p, edges)
}

type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
)

// mutexOp classifies call as a sync.Mutex/RWMutex operation and
// returns the lock identity it targets.
func mutexOp(info *types.Info, call *ast.CallExpr) (string, lockOp) {
	callee := flow.Callee(info, call)
	if callee == nil {
		return "", opNone
	}
	var op lockOp
	switch callee.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock", "RUnlock":
		op = opUnlock
	default:
		return "", opNone
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", opNone
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", opNone
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return "", opNone
	}
	recv := flow.Receiver(call)
	if recv == nil {
		return "", opNone
	}
	return lockIdentity(info, recv), op
}

// lockIdentity names the mutex a receiver expression denotes: a
// type-qualified field path for struct fields ("engine.Engine.mu"), a
// package-qualified name for package-level vars, and a position-unique
// name for locals.
func lockIdentity(info *types.Info, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockIdentity(info, e.X)
		}
	case *ast.SelectorExpr:
		field, _ := info.Uses[e.Sel].(*types.Var)
		if field != nil && field.IsField() {
			owner := "?"
			if sel, ok := info.Selections[e]; ok {
				t := sel.Recv()
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					obj := named.Obj()
					if obj.Pkg() != nil {
						owner = obj.Pkg().Name() + "." + obj.Name()
					} else {
						owner = obj.Name()
					}
				}
			}
			return owner + "." + field.Name()
		}
		// pkg.GlobalMu
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return fmt.Sprintf("local.%s@%d", obj.Name(), obj.Pos())
		}
	}
	return fmt.Sprintf("lock@%d", recv.Pos())
}

// checkLockBody runs the held-set dataflow over one function body,
// reporting imbalance and double acquisition and recording order edges.
func checkLockBody(p *Pass, info *types.Info, body *ast.BlockStmt, acquires map[*types.Func]map[string]bool, edges map[[2]string]token.Pos) {
	// Function-local lock table: identity -> bit.
	ids := make(map[string]uint64)
	names := []string{}
	bitOf := func(id string) uint64 {
		if b, ok := ids[id]; ok {
			return b
		}
		if len(names) >= 64 {
			return 0 // beyond tracking capacity; ignore rather than misreport
		}
		b := uint64(1) << uint(len(names))
		ids[id] = b
		names = append(names, id)
		return b
	}

	// lockEvent applies one node's lock operations to the held set.
	// When record is non-nil it also reports and collects order edges.
	apply := func(node ast.Node, held uint64, record func(format string, pos token.Pos, args ...interface{})) uint64 {
		flow.WalkNodes(node, func(n ast.Node) bool {
			if _, isDefer := n.(*ast.DeferStmt); isDefer {
				return false // defers run at exit, not here
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, op := mutexOp(info, call); op != opNone {
				bit := bitOf(id)
				switch op {
				case opLock, opRLock:
					if held&bit != 0 && op == opLock && record != nil {
						record("%s may already be held here — sync.Mutex is not reentrant, a second Lock self-deadlocks", call.Pos(), id)
					}
					if record != nil {
						for _, other := range names {
							ob := ids[other]
							if other != id && held&ob != 0 {
								key := [2]string{other, id}
								if _, seen := edges[key]; !seen {
									edges[key] = call.Pos()
								}
							}
						}
					}
					held |= bit
				case opUnlock:
					held &^= bit
				}
				return true
			}
			// A package-local callee that takes locks while we hold one
			// contributes order edges.
			if record == nil {
				return true
			}
			if callee := flow.Callee(info, call); callee != nil {
				for id := range acquires[callee] {
					for _, other := range names {
						ob := ids[other]
						if other != id && held&ob != 0 {
							key := [2]string{other, id}
							if _, seen := edges[key]; !seen {
								edges[key] = call.Pos()
							}
						}
					}
				}
			}
			return true
		})
		return held
	}

	cfg := flow.New(body, info)
	trans := func(b *flow.Block, in uint64) uint64 {
		held := in
		for _, node := range b.Nodes {
			held = apply(node, held, nil)
		}
		return held
	}
	in := cfg.Solve(0, trans)

	// Deferred unlocks release at every exit.
	var deferredUnlocks []uint64
	for _, d := range cfg.Defers {
		if id, op := mutexOp(info, d.Call); op == opUnlock {
			deferredUnlocks = append(deferredUnlocks, bitOf(id))
		}
	}

	reported := make(map[token.Pos]bool)
	for _, b := range cfg.Blocks {
		start, reached := in[b]
		if !reached {
			continue
		}
		held := start
		var lastReturn *ast.ReturnStmt
		for _, node := range b.Nodes {
			held = apply(node, held, func(format string, pos token.Pos, args ...interface{}) {
				if !reported[pos] {
					reported[pos] = true
					p.Reportf(pos, format, args...)
				}
			})
			if ret, ok := node.(*ast.ReturnStmt); ok {
				lastReturn = ret
			}
		}
		if !linksTo(b, cfg.Exit) {
			continue
		}
		for _, bit := range deferredUnlocks {
			held &^= bit
		}
		if held == 0 {
			continue
		}
		var still []string
		for _, id := range names {
			if held&ids[id] != 0 {
				still = append(still, id)
			}
		}
		pos := cfg.End - 1
		if lastReturn != nil {
			pos = lastReturn.Pos()
		}
		if !reported[pos] {
			reported[pos] = true
			p.Reportf(pos, "this path can return while still holding %s — every Lock needs an Unlock (or defer) on all paths",
				strings.Join(still, ", "))
		}
	}
}

// reportLockCycles finds cycles in the package's acquisition-order
// graph and reports each once, at the edge that closes it.
func reportLockCycles(p *Pass, edges map[[2]string]token.Pos) {
	if len(edges) == 0 {
		return
	}
	succ := make(map[string][]string)
	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		succ[k[0]] = append(succ[k[0]], k[1])
	}

	// DFS from each node in sorted order; report one cycle per
	// back-edge into the current stack.
	state := make(map[string]int) // 0 unvisited, 1 on stack, 2 done
	var stack []string
	reported := make(map[[2]string]bool)
	var visit func(n string)
	visit = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		for _, m := range succ[n] {
			if state[m] == 1 {
				// Found a cycle: slice the stack from m to n.
				i := 0
				for j, s := range stack {
					if s == m {
						i = j
						break
					}
				}
				cyc := append(append([]string{}, stack[i:]...), m)
				key := [2]string{n, m}
				if !reported[key] {
					reported[key] = true
					p.Reportf(edges[key], "lock-order cycle: %s — two goroutines taking these in opposite order deadlock", strings.Join(cyc, " → "))
				}
			} else if state[m] == 0 {
				visit(m)
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	var nodes []string
	for _, k := range keys {
		nodes = append(nodes, k[0])
	}
	for _, n := range nodes {
		if state[n] == 0 {
			visit(n)
		}
	}
}
