package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"promonet/internal/lint/flow"
)

// versionStamp enforces the engine's cache-invalidation contract on
// internal/graph: every exported *Graph method that mutates the
// structure (writes the adj or m fields, directly or through an
// unexported helper) must call bumpVersion() on every path that can
// return after the mutation. A mutation path that reaches a return
// without a bump leaves the version counter stale, and the engine's
// content-addressed memo table (internal/engine) would serve scores for
// a structure that no longer exists — exactly the silent staleness the
// promotion-size measurements cannot tolerate.
//
// Paths that return before any write (no-op inserts/removals) and paths
// that terminate in panic are exempt: the version only needs to move
// when the structure did.
var versionStamp = &Analyzer{
	Name:     "version-stamp",
	Doc:      "flag internal/graph mutation paths that can return without calling bumpVersion()",
	Severity: SevError,
	Run:      runVersionStamp,
}

// versionStampBits is the dataflow state: dirty = adj/m written with no
// bumpVersion() since.
const vsDirty uint64 = 1

func runVersionStamp(p *Pass) {
	if !p.relScope("internal/graph") {
		return
	}
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)

	// Interprocedural summaries over the package's Graph methods.
	// writes[f]: f may write its own receiver's adj/m (transitively).
	// bumps[f]: every path of f through a return passes a bumpVersion()
	// call on its own receiver (transitively). bumpVersion itself is the
	// primitive.
	writes := make(map[*types.Func]bool)
	bumps := make(map[*types.Func]bool)
	for f := range cg.Decls {
		if f.Name() == "bumpVersion" && graphReceiver(f) != nil {
			bumps[f] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for f, fd := range cg.Decls {
			recv := receiverObj(info, fd)
			if recv == nil || graphReceiver(f) == nil {
				continue
			}
			if !writes[f] && methodMayWrite(info, fd, recv, writes, bumps) {
				writes[f] = true
				changed = true
			}
			if !bumps[f] && methodMustBump(info, fd, recv, writes, bumps) {
				bumps[f] = true
				changed = true
			}
		}
	}

	// The check proper: exported methods only — they are the package
	// API whose callers rely on the invalidation contract.
	for f, fd := range cg.Decls {
		recv := receiverObj(info, fd)
		if recv == nil || graphReceiver(f) == nil || !f.Exported() {
			continue
		}
		checkVersionStamp(p, fd, recv, writes, bumps)
	}
}

// graphReceiver returns the receiver variable if f is a method on
// Graph or *Graph, else nil.
func graphReceiver(f *types.Func) *types.Var {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Graph" {
		return nil
	}
	return sig.Recv()
}

// receiverObj returns the object bound to fd's named receiver, or nil
// when the receiver is unnamed (such a method cannot write its fields).
func receiverObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// writesStructuralField reports whether lhs is a write target rooted at
// recv.adj or recv.m (possibly through indexing/slicing).
func writesStructuralField(info *types.Info, lhs ast.Expr, recv types.Object) bool {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if e.Sel.Name != "adj" && e.Sel.Name != "m" {
				return false
			}
			base, ok := ast.Unparen(e.X).(*ast.Ident)
			return ok && info.Uses[base] == recv
		default:
			return false
		}
	}
}

// recvCall returns the callee if call is a method call on the receiver
// object (recv.helper(...)), else nil.
func recvCall(info *types.Info, call *ast.CallExpr, recv types.Object) *types.Func {
	base, ok := ast.Unparen(flow.Receiver(call)).(*ast.Ident)
	if !ok || info.Uses[base] != recv {
		return nil
	}
	return flow.Callee(info, call)
}

// vsTransfer applies one CFG node's structural-write and bump events to
// the dirty bit, optionally reporting each event through visit.
func vsTransfer(info *types.Info, node ast.Node, recv types.Object,
	writes, bumps map[*types.Func]bool, in uint64, visit func(n ast.Node, state uint64)) uint64 {
	state := in
	flow.WalkNodes(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if writesStructuralField(info, lhs, recv) {
					state |= vsDirty
				}
			}
		case *ast.IncDecStmt:
			if writesStructuralField(info, n.X, recv) {
				state |= vsDirty
			}
		case *ast.CallExpr:
			callee := recvCall(info, n, recv)
			if callee == nil {
				return true
			}
			switch {
			case bumps[callee]:
				state &^= vsDirty
			case writes[callee]:
				state |= vsDirty
			}
		}
		if visit != nil {
			visit(n, state)
		}
		return true
	})
	return state
}

// methodMayWrite reports whether fd writes its receiver's adj/m fields
// anywhere (a may-property, no CFG needed).
func methodMayWrite(info *types.Info, fd *ast.FuncDecl, recv types.Object, writes, bumps map[*types.Func]bool) bool {
	if fd.Body == nil {
		return false
	}
	found := false
	flow.WalkNodes(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if writesStructuralField(info, lhs, recv) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if writesStructuralField(info, n.X, recv) {
				found = true
			}
		case *ast.CallExpr:
			if callee := recvCall(info, n, recv); callee != nil && writes[callee] {
				found = true
			}
		}
		return !found
	})
	return found
}

// methodMustBump reports whether every return path of fd passes a
// bumpVersion() call (directly or via a must-bump callee) on its own
// receiver. Encoded as the negation of a may-property: the "unbumped"
// bit survives to some exit iff the method is not a must-bump.
func methodMustBump(info *types.Info, fd *ast.FuncDecl, recv types.Object, writes, bumps map[*types.Func]bool) bool {
	if fd.Body == nil {
		return false
	}
	const unbumped uint64 = 1
	cfg := flow.New(fd.Body, info)
	trans := func(b *flow.Block, in uint64) uint64 {
		state := in
		for _, node := range b.Nodes {
			flow.WalkNodes(node, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if callee := recvCall(info, call, recv); callee != nil && bumps[callee] {
						state &^= unbumped
					}
				}
				return true
			})
		}
		return state
	}
	in := cfg.Solve(unbumped, trans)
	for _, b := range cfg.Blocks {
		if _, reached := in[b]; !reached || !linksTo(b, cfg.Exit) {
			continue
		}
		if trans(b, in[b])&unbumped != 0 {
			return false
		}
	}
	return len(cfg.Blocks) > 0
}

func linksTo(b *flow.Block, target *flow.Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

// checkVersionStamp runs the dirty-bit analysis over one exported
// mutator and reports every return reachable with an unbumped write.
func checkVersionStamp(p *Pass, fd *ast.FuncDecl, recv types.Object, writes, bumps map[*types.Func]bool) {
	info := p.Pkg.Info
	cfg := flow.New(fd.Body, info)
	trans := func(b *flow.Block, in uint64) uint64 {
		state := in
		for _, node := range b.Nodes {
			state = vsTransfer(info, node, recv, writes, bumps, state, nil)
		}
		return state
	}
	in := cfg.Solve(0, trans)

	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		p.Reportf(pos,
			"%s can return with adj/m mutated but no bumpVersion() call on this path — the engine's version-keyed cache would serve stale scores",
			fd.Name.Name)
	}
	for _, b := range cfg.Blocks {
		start, reached := in[b]
		if !reached || !linksTo(b, cfg.Exit) {
			continue
		}
		state := start
		var lastReturn *ast.ReturnStmt
		for _, node := range b.Nodes {
			state = vsTransfer(info, node, recv, writes, bumps, state, nil)
			if ret, ok := node.(*ast.ReturnStmt); ok {
				lastReturn = ret
			}
		}
		if state&vsDirty == 0 {
			continue
		}
		if lastReturn != nil {
			report(lastReturn.Pos())
		} else {
			report(cfg.End - 1)
		}
	}
}
