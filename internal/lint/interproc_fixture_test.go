package lint

import "testing"

// Fixtures for the interprocedural analyzers (view-immutability,
// goroutine-lifecycle, snapshot-aliasing). Each analyzer gets its own
// fixture module and a single-analyzer run, so the cases exercise
// exactly the rule under test with no cross-analyzer noise.

// viewImmutabilityFixture builds a stand-in graph package plus a
// consumer package covering every write/retention rule.
func viewImmutabilityFixture() map[string]string {
	return map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",

		"internal/graph/view.go": `package graph

// View is the read-only backend stand-in.
type View interface {
	N() int
	Adjacency(v int) []int32
}

// ArcsView adds the flat-array capability.
type ArcsView interface {
	View
	Arcs() (rowptr []int64, cols []int32)
}

// ArcsOf returns the flat arrays when available.
func ArcsOf(g View) (rowptr []int64, cols []int32) {
	if av, ok := g.(ArcsView); ok {
		return av.Arcs()
	}
	return nil, nil
}

// Graph is a minimal mutable backend.
type Graph struct {
	adj [][]int32
}

// N returns the node count.
func (g *Graph) N() int { return len(g.adj) }

// Adjacency returns v's neighbor row, read-only.
func (g *Graph) Adjacency(v int) []int32 { return g.adj[v] }
`,

		"internal/centrality/cases.go": `package centrality

import "fixturemod/internal/graph"

// holder is mutable storage a frozen row must never land in.
type holder struct {
	row []int32
}

// sink is package-level mutable storage.
var sink []int32

// BadDirectWrite writes straight through an adjacency row: finding.
func BadDirectWrite(g graph.View) {
	row := g.Adjacency(0)
	row[0] = 1
}

// BadAliasWrite writes through a subslice alias: finding.
func BadAliasWrite(g graph.View) {
	row := g.Adjacency(0)
	tail := row[1:]
	tail[0] = 1
}

// zeroAll is an in-package helper that mutates its parameter.
func zeroAll(xs []int32) {
	for i := range xs {
		xs[i] = 0
	}
}

// BadHelperWrite reaches the write through a helper call: finding.
func BadHelperWrite(g graph.View) {
	zeroAll(g.Adjacency(0))
}

// BadRetainField parks a row in a struct field: finding.
func BadRetainField(g graph.View, h *holder) {
	h.row = g.Adjacency(0)
}

// BadRetainGlobal parks a row in a package variable: finding.
func BadRetainGlobal(g graph.View) {
	sink = g.Adjacency(0)
}

// BadArcsWrite writes into the flat column array: finding.
func BadArcsWrite(g graph.View) {
	_, cols := graph.ArcsOf(g)
	if cols != nil {
		cols[0] = 1
	}
}

// firstRow is a wrapper source: its result is a live view row.
func firstRow(g graph.View) []int32 {
	return g.Adjacency(0)
}

// BadWrapperWrite writes through a wrapper's result: finding.
func BadWrapperWrite(g graph.View) {
	r := firstRow(g)
	r[0] = 1
}

// BadCopyInto uses a view row as a copy destination: finding.
func BadCopyInto(g graph.View, src []int32) {
	copy(g.Adjacency(0), src)
}

// GoodCopyOut copies the row before editing: no finding.
func GoodCopyOut(g graph.View) []int32 {
	r := append([]int32(nil), g.Adjacency(0)...)
	r[0] = 1
	return r
}

// GoodRead only reads: no finding.
func GoodRead(g graph.View) int {
	total := 0
	for _, u := range g.Adjacency(0) {
		total += int(u)
	}
	return total
}

// GoodReturn forwards the row read-only: no finding (callers are
// checked at their own use sites).
func GoodReturn(g graph.View) []int32 {
	return g.Adjacency(0)
}

// AllowedWrite is annotated: suppressed.
func AllowedWrite(g graph.View) {
	row := g.Adjacency(0)
	//promolint:allow view-immutability -- fixture exercises suppression
	row[0] = 1
}
`,
	}
}

func TestViewImmutabilityFixture(t *testing.T) {
	diags := runOnly(t, viewImmutabilityFixture(), "view-immutability")
	want(t, diags, "view-immutability", "write through row[0]")
	want(t, diags, "view-immutability", "write through tail[0]")
	want(t, diags, "view-immutability", "passed to zeroAll")
	want(t, diags, "view-immutability", "stored into h.row")
	want(t, diags, "view-immutability", "stored into sink")
	want(t, diags, "view-immutability", "write through cols[0]")
	want(t, diags, "view-immutability", "write through r[0]")
	want(t, diags, "view-immutability", "copy into g.Adjacency(0)")
	for _, clean := range []string{"GoodCopyOut", "GoodRead", "GoodReturn", "AllowedWrite"} {
		funcs := findingFuncs(t, diags, viewImmutabilityFixture(), "view-immutability", "internal/centrality/cases.go")
		if funcs[clean] != 0 {
			t.Errorf("clean case %s has %d view-immutability findings", clean, funcs[clean])
		}
	}
}

// goroutineLifecycleFixture covers the termination and join rules.
func goroutineLifecycleFixture() map[string]string {
	return map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",

		"internal/engine/pool.go": `package engine

import "sync"

// Pool is a worker pool with a proper shutdown path.
type Pool struct {
	jobs chan func()
}

// NewPool spawns workers that drain jobs until close: no finding.
func NewPool(workers int) *Pool {
	p := &Pool{jobs: make(chan func())}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Close shuts the pool down.
func (p *Pool) Close() {
	close(p.jobs)
}

// LeakyPool ranges over a channel nobody ever closes: finding.
type LeakyPool struct {
	work chan int
}

// NewLeakyPool spawns an unjoinable worker.
func NewLeakyPool() *LeakyPool {
	lp := &LeakyPool{work: make(chan int)}
	go func() {
		for range lp.work {
		}
	}()
	return lp
}

// SpinForever spawns a loop with no exit at all: finding.
func SpinForever() {
	go func() {
		for {
		}
	}()
}

// GoodBatchLoop is the kernel fan-out shape — an unconditional loop
// that returns when the work runs out: no finding.
func GoodBatchLoop(n int) {
	var mu sync.Mutex
	next := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			mu.Lock()
			lo := next
			next++
			mu.Unlock()
			if lo >= n {
				return
			}
		}
	}()
	wg.Wait()
}

// BadMissingDone Adds and Waits, but the worker forgot Done: finding.
func BadMissingDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		_ = 1
	}()
	wg.Wait()
}

// BadLateDone has a path that skips the non-deferred Done: finding.
func BadLateDone(cond bool) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		if cond {
			return
		}
		wg.Done()
	}()
	wg.Wait()
}

// namedWorker carries its Done in the summary (ParamWGDone).
func namedWorker(wg *sync.WaitGroup) {
	defer wg.Done()
}

// GoodNamedWorker joins through a named worker function: no finding.
func GoodNamedWorker() {
	var wg sync.WaitGroup
	wg.Add(1)
	go namedWorker(&wg)
	wg.Wait()
}

// keep is storage that makes a WaitGroup escape analysis.
var keep *sync.WaitGroup

// stash retains the WaitGroup without calling Done on it.
func stash(w *sync.WaitGroup) {
	keep = w
}

// GoodEscapedWG hands its WaitGroup away — out of scope, no finding.
func GoodEscapedWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	stash(&wg)
	go func() {
		_ = 1
	}()
	wg.Wait()
}
`,
	}
}

func TestGoroutineLifecycleFixture(t *testing.T) {
	fix := goroutineLifecycleFixture()
	diags := runOnly(t, fix, "goroutine-lifecycle")
	want(t, diags, "goroutine-lifecycle", "ranges over channel lp.work")
	want(t, diags, "goroutine-lifecycle", "loops forever")
	want(t, diags, "goroutine-lifecycle", "wg.Wait() can never return")
	want(t, diags, "goroutine-lifecycle", "wg.Done() is not deferred")
	funcs := findingFuncs(t, diags, fix, "goroutine-lifecycle", "internal/engine/pool.go")
	for _, clean := range []string{"NewPool", "GoodBatchLoop", "GoodNamedWorker", "GoodEscapedWG"} {
		if funcs[clean] != 0 {
			t.Errorf("clean case %s has %d goroutine-lifecycle findings", clean, funcs[clean])
		}
	}
}

// snapshotAliasingFixture covers the csr package's own discipline.
func snapshotAliasingFixture() map[string]string {
	return map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",

		"internal/graph/csr/csr.go": `package csr

// Snapshot is the frozen CSR stand-in.
type Snapshot struct {
	rowptr []int64
	cols   []int32
}

// Adjacency returns v's frozen row.
func (s *Snapshot) Adjacency(v int) []int32 {
	return s.cols[s.rowptr[v]:s.rowptr[v+1]]
}

// GoodFreeze builds a snapshot from freshly allocated arrays and fills
// them in: no finding (the snapshot is under construction).
func GoodFreeze(rows [][]int32) *Snapshot {
	n := len(rows)
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	s := &Snapshot{rowptr: make([]int64, n+1), cols: make([]int32, total)}
	var at int64
	for v := 0; v < n; v++ {
		s.rowptr[v] = at
		at += int64(copy(s.cols[at:], rows[v]))
	}
	s.rowptr[n] = at
	return s
}

// BadPoison writes through a live snapshot's arrays: finding.
func (s *Snapshot) BadPoison() {
	s.cols[0] = 1
}

// BadAliasingLiteral builds a snapshot around caller-held slices:
// two freshness findings.
func BadAliasingLiteral(rowptr []int64, cols []int32) *Snapshot {
	return &Snapshot{rowptr: rowptr, cols: cols}
}

// Overlay is the copy-on-touch edit layer stand-in.
type Overlay struct {
	base *Snapshot
	rows map[int32][]int32
}

// row reads through to the base for untouched nodes.
func (o *Overlay) row(v int) []int32 {
	if r, ok := o.rows[int32(v)]; ok {
		return r
	}
	return o.base.Adjacency(v)
}

// BadBaseWrite mutates the live base directly: finding.
func (o *Overlay) BadBaseWrite(v int) {
	r := o.base.Adjacency(v)
	r[0] = 1
}

// BadRowWrite mutates the base through the row helper: finding (the
// summary engine sees row may return a base alias).
func (o *Overlay) BadRowWrite(v int) {
	r := o.row(v)
	r[0] = 1
}

// GoodCopyOnTouch copies before editing: no finding.
func (o *Overlay) GoodCopyOnTouch(v int) {
	r := append([]int32(nil), o.base.Adjacency(v)...)
	r[0] = 1
	o.rows[int32(v)] = r
}
`,
	}
}

func TestSnapshotAliasingFixture(t *testing.T) {
	fix := snapshotAliasingFixture()
	diags := runOnly(t, fix, "snapshot-aliasing")
	want(t, diags, "snapshot-aliasing", "Snapshot.rowptr is initialized from rowptr")
	want(t, diags, "snapshot-aliasing", "Snapshot.cols is initialized from cols")
	funcs := findingFuncs(t, diags, fix, "snapshot-aliasing", "internal/graph/csr/csr.go")
	for _, bad := range []string{"BadPoison", "BadBaseWrite", "BadRowWrite"} {
		if funcs[bad] == 0 {
			t.Errorf("bad case %s has no snapshot-aliasing finding\n%s", bad, renderDiags(diags))
		}
	}
	for _, clean := range []string{"GoodFreeze", "GoodCopyOnTouch", "Adjacency", "row"} {
		if funcs[clean] != 0 {
			t.Errorf("clean case %s has %d snapshot-aliasing findings\n%s", clean, funcs[clean], renderDiags(diags))
		}
	}
}
