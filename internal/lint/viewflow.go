package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"promonet/internal/lint/flow"
)

// This file is the shared engine behind the two read-only-alias
// analyzers, view-immutability and snapshot-aliasing. Both enforce the
// same shape of invariant — certain slices are frozen and must be
// neither written through nor parked in a mutable location — and differ
// only in what counts as a protected source and which writes are
// exempt. The engine tracks, per function, the locals that may alias a
// protected slice (through rebinds, subslices, and package-local
// helpers with ParamReturned/ReturnsSource summaries) and reports
// writes and retentions that reach one.
//
// Known blind spots, by design: protected values handed to functions in
// other packages are not followed (the interprocedural summaries are
// package-local, like the call graph they ride on), and container
// round-trips (store a row in a map, read it back) launder the taint.
// The csr differential suite and the graph invariant checker remain the
// dynamic backstop for those paths.

// roFlow is one analyzer's configuration of the read-only-alias engine.
type roFlow struct {
	pass *Pass
	info *types.Info
	sums *flow.SummarySet
	// isSourceCall classifies calls that produce a protected slice.
	isSourceCall func(*ast.CallExpr) bool
	// isSourceExpr classifies non-call protected expressions (direct
	// frozen-array field reads); nil means calls are the only sources.
	isSourceExpr func(ast.Expr) bool
	// what names the protected thing inside diagnostics, e.g.
	// "View adjacency slice".
	what string
	// advice is the trailing remediation clause of every finding.
	advice string

	reported map[token.Pos]bool
}

// check runs the engine over every function of the package.
func (rf *roFlow) check() {
	rf.reported = make(map[token.Pos]bool)
	for _, file := range rf.pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				rf.checkFunc(fd)
			}
		}
	}
}

func (rf *roFlow) reportf(pos token.Pos, format string, args ...interface{}) {
	if rf.reported[pos] {
		return
	}
	rf.reported[pos] = true
	rf.pass.Reportf(pos, format, args...)
}

// checkFunc analyzes one function body: first close the set of locals
// that may alias a protected slice, then flag every write through and
// every retention of one. The walk descends into closures — a captured
// row is still frozen.
func (rf *roFlow) checkFunc(fd *ast.FuncDecl) {
	if rf.reported == nil {
		rf.reported = make(map[token.Pos]bool)
	}
	derived := rf.derivedObjs(fd.Body)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			rf.checkAssign(n, derived)
		case *ast.IncDecStmt:
			if root, ok := writeRoot(n.X); ok && rf.isDerived(root, derived) {
				rf.reportf(n.Pos(), "%s modifies a %s — %s", exprString(n.X), rf.what, rf.advice)
			}
		case *ast.SendStmt:
			if rf.isDerived(n.Value, derived) {
				rf.reportf(n.Value.Pos(), "%s is sent on a channel — a %s escapes to a holder that may outlive the frozen structure; %s", exprString(n.Value), rf.what, rf.advice)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if rf.isDerived(el, derived) {
					rf.reportf(el.Pos(), "%s is stored in a composite literal — a %s escapes into a mutable value; %s", exprString(el), rf.what, rf.advice)
				}
			}
		case *ast.CallExpr:
			rf.checkCall(n, derived)
		}
		return true
	})
}

// checkAssign flags writes through protected slices on the LHS and
// retentions of protected values stored into non-local locations.
func (rf *roFlow) checkAssign(assign *ast.AssignStmt, derived map[types.Object]bool) {
	for _, lhs := range assign.Lhs {
		if root, ok := writeRoot(lhs); ok && rf.isDerived(root, derived) {
			rf.reportf(lhs.Pos(), "write through %s — this is a %s; %s", exprString(lhs), rf.what, rf.advice)
		}
	}
	// Retention: a protected value assigned into a dereferenced location
	// (field, element, pointee) or a package-level variable escapes into
	// mutable storage.
	for i, lhs := range assign.Lhs {
		if !rf.isRetainingTarget(lhs) {
			continue
		}
		if len(assign.Lhs) == len(assign.Rhs) {
			if rf.isDerived(assign.Rhs[i], derived) {
				rf.reportf(assign.Rhs[i].Pos(), "%s is stored into %s — a %s escapes into mutable storage; %s", exprString(assign.Rhs[i]), exprString(lhs), rf.what, rf.advice)
			}
		} else if len(assign.Rhs) == 1 {
			if rf.isDerived(assign.Rhs[0], derived) {
				rf.reportf(assign.Rhs[0].Pos(), "%s is stored into %s — a %s escapes into mutable storage; %s", exprString(assign.Rhs[0]), exprString(lhs), rf.what, rf.advice)
			}
		}
	}
}

// checkCall flags builtin writes (copy into, append onto) and calls
// that forward a protected slice to a package-local callee known to
// mutate or retain the corresponding parameter.
func (rf *roFlow) checkCall(call *ast.CallExpr, derived map[types.Object]bool) {
	if name, ok := builtinCallName(rf.info, call); ok {
		switch name {
		case "copy":
			if len(call.Args) == 2 && rf.isDerived(call.Args[0], derived) {
				rf.reportf(call.Args[0].Pos(), "copy into %s — this is a %s; %s", exprString(call.Args[0]), rf.what, rf.advice)
			}
		case "append":
			if len(call.Args) > 0 && rf.isDerived(call.Args[0], derived) {
				rf.reportf(call.Args[0].Pos(), "append onto %s may write its backing array — this is a %s; %s", exprString(call.Args[0]), rf.what, rf.advice)
			}
		}
		return
	}
	callee := flow.Callee(rf.info, call)
	if callee == nil {
		return
	}
	if recv := flow.Receiver(call); recv != nil && rf.isDerived(recv, derived) {
		facts := rf.sums.RecvFacts(callee)
		if facts&flow.ParamMutated != 0 {
			rf.reportf(call.Pos(), "%s mutates its receiver %s — this is a %s; %s", callee.Name(), exprString(recv), rf.what, rf.advice)
		}
		if facts&flow.ParamRetained != 0 {
			rf.reportf(call.Pos(), "%s retains its receiver %s — a %s escapes into mutable storage; %s", callee.Name(), exprString(recv), rf.what, rf.advice)
		}
	}
	sig, _ := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		if !rf.isDerived(arg, derived) {
			continue
		}
		idx := i
		if sig != nil && sig.Variadic() && idx >= sig.Params().Len()-1 {
			// Variadic forwarding (e.g. append-style copies) never mutates
			// the source elements; skip unless the callee retains them.
			idx = sig.Params().Len() - 1
		}
		facts := rf.sums.FactsAt(callee, idx)
		if facts&flow.ParamMutated != 0 {
			rf.reportf(arg.Pos(), "%s is passed to %s, which writes through that parameter — this is a %s; %s", exprString(arg), callee.Name(), rf.what, rf.advice)
		}
		if facts&flow.ParamRetained != 0 {
			rf.reportf(arg.Pos(), "%s is passed to %s, which retains that parameter — a %s escapes into mutable storage; %s", exprString(arg), callee.Name(), rf.what, rf.advice)
		}
	}
}

// isRetainingTarget reports whether storing into lhs parks the value in
// mutable storage: a field, element, or pointee lvalue, or a
// package-level variable.
func (rf *roFlow) isRetainingTarget(lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.SelectorExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		if v, ok := rf.info.Uses[l].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
	}
	return false
}

// derivedObjs closes, by fixpoint, the set of local objects that may
// alias a protected slice: bound to a source call (including the tuple
// form `rowptr, cols := graph.ArcsOf(g)`), or assigned an
// alias-preserving expression of an already-derived value.
func (rf *roFlow) derivedObjs(body ast.Node) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	record := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := rf.info.Defs[id]
		if obj == nil {
			obj = rf.info.Uses[id]
		}
		if obj == nil || derived[obj] {
			return false
		}
		derived[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
				// Tuple binding from one source call protects every result
				// (ArcsOf returns both frozen arrays).
				if rf.isDerived(assign.Rhs[0], derived) {
					for _, lhs := range assign.Lhs {
						if record(lhs) {
							changed = true
						}
					}
				}
				return true
			}
			if len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if rf.isDerived(rhs, derived) && record(assign.Lhs[i]) {
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// isDerived reports whether e may evaluate to a protected slice: a
// source call, a source expression, a derived local, an
// alias-preserving wrapper of one, or a call into a package-local
// helper that returns a protected value or an alias of a derived
// argument.
func (rf *roFlow) isDerived(e ast.Expr, derived map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if derived[rf.info.Uses[e]] || derived[rf.info.Defs[e]] {
			return true
		}
	case *ast.SliceExpr:
		return rf.isDerived(e.X, derived)
	case *ast.IndexExpr:
		return rf.isDerived(e.X, derived)
	case *ast.SelectorExpr:
		return rf.isSourceExpr != nil && rf.isSourceExpr(e)
	case *ast.CallExpr:
		if rf.isSourceCall(e) {
			return true
		}
		callee := flow.Callee(rf.info, e)
		if callee == nil {
			return false
		}
		sum := rf.sums.Of(callee)
		if sum == nil {
			return false
		}
		if sum.ReturnsSource {
			return true
		}
		// The callee returns an alias of an argument: the result is
		// protected exactly when that argument is.
		if sum.Recv&flow.ParamReturned != 0 {
			if recv := flow.Receiver(e); recv != nil && rf.isDerived(recv, derived) {
				return true
			}
		}
		for i, arg := range e.Args {
			if i < len(sum.Params) && sum.Params[i]&flow.ParamReturned != 0 && rf.isDerived(arg, derived) {
				return true
			}
		}
	}
	return false
}

// writeRoot unwraps an assignment target that stores through a
// dereference to the expression being stored through: for row[i] the
// row, for s.cols[a:b] the s.cols. The second result is false for plain
// variable rebinds, which are not writes.
func writeRoot(lhs ast.Expr) (ast.Expr, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return l.X, true
	case *ast.SliceExpr:
		return l.X, true
	case *ast.StarExpr:
		return l.X, true
	}
	return nil, false
}

// builtinCallName resolves a call to a language builtin, if it is one.
func builtinCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// pkgPathEndsIn reports whether path is rel or ends in "/"+rel — the
// path-suffix matching that makes fixtures with a different module name
// behave like the real tree.
func pkgPathEndsIn(path, rel string) bool {
	if path == rel {
		return true
	}
	suffix := "/" + rel
	return len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix
}
