package lint

import (
	"regexp"
	"strings"
	"testing"
)

// Mutation acceptance tests for the interprocedural analyzers: each
// copies real files out of the tree, asserts the pristine copy is
// clean, applies the exact regression the analyzer exists to catch,
// and asserts a finding appears.

// realKernelFiles is the standalone-typecheckable BFS kernel pair plus
// its graph/obs dependencies.
func realKernelFiles(t *testing.T) map[string]string {
	t.Helper()
	files := realGraphFiles(t, realObsFiles(t))
	files["internal/centrality/bfs.go"] = realFile(t, "internal/centrality/bfs.go")
	files["internal/centrality/bfs_csr.go"] = realFile(t, "internal/centrality/bfs_csr.go")
	return files
}

// realCSRFiles is the real CSR backend plus its graph/obs dependencies.
func realCSRFiles(t *testing.T) map[string]string {
	t.Helper()
	files := realGraphFiles(t, realObsFiles(t))
	files["internal/graph/csr/csr.go"] = realFile(t, "internal/graph/csr/csr.go")
	files["internal/graph/csr/overlay.go"] = realFile(t, "internal/graph/csr/overlay.go")
	return files
}

func wantFindingIn(t *testing.T, diags []Diagnostic, analyzer, fileSuffix, what string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.HasSuffix(d.Pos.Filename, fileSuffix) {
			return
		}
	}
	t.Errorf("%s produced no %s finding in %s:\n%s", what, analyzer, fileSuffix, renderDiags(diags))
}

// TestViewImmutabilityCatchesInjectedKernelWrite: injecting a column
// write into the CSR BFS kernel must produce a view-immutability
// finding — at the bfs.go call site, through runArcs's ParamMutated
// summary, because the kernel receives the frozen arrays as plain
// slice parameters.
func TestViewImmutabilityCatchesInjectedKernelWrite(t *testing.T) {
	files := realKernelFiles(t)
	mustClean(t, runOnly(t, files, "view-immutability"), "kernel")

	csr := files["internal/centrality/bfs_csr.go"]
	marker := "dist[s] = 0"
	if strings.Count(csr, marker) != 1 {
		t.Fatalf("want exactly 1 %q in the real bfs_csr.go, got %d — the fixture premise broke",
			marker, strings.Count(csr, marker))
	}
	files["internal/centrality/bfs_csr.go"] = strings.Replace(csr, marker, marker+"\n\tcols[0] = 0", 1)
	wantFindingIn(t, runOnly(t, files, "view-immutability"),
		"view-immutability", "bfs.go", "injecting cols[0] = 0 into runArcs")
}

// TestViewImmutabilityCatchesLeakedRowptr: a helper that parks the
// frozen rowptr array in a mutable struct field must produce a
// view-immutability retention finding.
func TestViewImmutabilityCatchesLeakedRowptr(t *testing.T) {
	files := realKernelFiles(t)
	mustClean(t, runOnly(t, files, "view-immutability"), "kernel")

	files["internal/centrality/leak.go"] = `package centrality

import "fixturemod/internal/graph"

// arcCache pretends to memoize the flat arrays — the leak under test.
type arcCache struct {
	rowptr []int64
}

var arcs arcCache

func cacheArcs(g graph.View) {
	rowptr, _ := graph.ArcsOf(g)
	arcs.rowptr = rowptr
}
`
	wantFindingIn(t, runOnly(t, files, "view-immutability"),
		"view-immutability", "leak.go", "leaking rowptr into a struct field")
}

// TestGoroutineLifecycleCatchesDeletedDone: deleting the worker's
// defer wg.Done() from the real BFS fan-out must produce a
// goroutine-lifecycle finding — the Wait becomes unreachable.
func TestGoroutineLifecycleCatchesDeletedDone(t *testing.T) {
	files := realKernelFiles(t)
	mustClean(t, runOnly(t, files, "goroutine-lifecycle"), "kernel")

	bfs := files["internal/centrality/bfs.go"]
	re := regexp.MustCompile(`(?m)^\s*defer wg\.Done\(\)\n`)
	if got := len(re.FindAllStringIndex(bfs, -1)); got != 1 {
		t.Fatalf("want exactly 1 defer wg.Done() in the real bfs.go, got %d — the fixture premise broke", got)
	}
	files["internal/centrality/bfs.go"] = re.ReplaceAllString(bfs, "")
	wantFindingIn(t, runOnly(t, files, "goroutine-lifecycle"),
		"goroutine-lifecycle", "bfs.go", "deleting defer wg.Done()")
}

// TestSnapshotAliasingCatchesMutatedOverlayBase: breaking the overlay's
// copy-on-touch path into aliasing the live base row must produce
// snapshot-aliasing findings — the overlay would then edit the frozen
// snapshot in place, under every version-keyed cache.
func TestSnapshotAliasingCatchesMutatedOverlayBase(t *testing.T) {
	files := realCSRFiles(t)
	mustClean(t, runOnly(t, files, "snapshot-aliasing"), "csr")

	overlay := files["internal/graph/csr/overlay.go"]
	fresh := "r = append([]int32(nil), o.base.Adjacency(v)...)"
	if strings.Count(overlay, fresh) != 1 {
		t.Fatalf("want exactly 1 copy-on-touch append in the real overlay.go — the fixture premise broke")
	}
	files["internal/graph/csr/overlay.go"] = strings.Replace(overlay, fresh, "r = o.base.Adjacency(v)", 1)
	wantFindingIn(t, runOnly(t, files, "snapshot-aliasing"),
		"snapshot-aliasing", "overlay.go", "aliasing the overlay base in mutableRow")
}
