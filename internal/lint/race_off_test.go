//go:build !race

package lint

// raceEnabled mirrors race_on_test.go for builds without the detector.
const raceEnabled = false
