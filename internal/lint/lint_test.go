package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture materializes a file tree under a temp dir and returns
// its root.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// fixtureGraph is a minimal stand-in for internal/graph: the
// mutation-safety analyzer identifies the type by its package path
// suffix and name, so the fixture provides its own copy.
const fixtureGraph = `package graph

// Graph is a minimal mutable graph for analyzer fixtures.
type Graph struct{ edges [][2]int }

// AddEdge records an edge.
func (g *Graph) AddEdge(u, v int) bool { g.edges = append(g.edges, [2]int{u, v}); return true }

// RemoveEdge drops the last edge.
func (g *Graph) RemoveEdge(u, v int) bool { return false }

// AddNode is a mutator.
func (g *Graph) AddNode() int { return 0 }

// AddNodes is a mutator.
func (g *Graph) AddNodes(k int) int { return 0 }

// HasEdge is read-only.
func (g *Graph) HasEdge(u, v int) bool { return false }

// Clone copies the graph.
func (g *Graph) Clone() *Graph { return &Graph{edges: append([][2]int(nil), g.edges...)} }
`

func fixtureFiles() map[string]string {
	return map[string]string{
		"go.mod":                  "module fixturemod\n\ngo 1.22\n",
		"internal/graph/graph.go": fixtureGraph,

		// mutation-safety: positive (direct param mutation), negative
		// (mutating a clone), suppressed (allow annotation).
		"internal/centrality/mutation.go": `package centrality

import "fixturemod/internal/graph"

// BadMutate mutates its parameter: finding expected.
func BadMutate(g *graph.Graph) { g.AddEdge(0, 1) }

// GoodClone mutates a local clone: no finding.
func GoodClone(g *graph.Graph) {
	work := g.Clone()
	work.AddEdge(0, 1)
	work.RemoveEdge(0, 1)
}

// GoodRead only reads: no finding.
func GoodRead(g *graph.Graph) bool { return g.HasEdge(0, 1) }

// AllowedMutate is sanctioned strategy code.
//
//promolint:allow mutation-safety -- fixture strategy code
func AllowedMutate(g *graph.Graph) { g.AddNodes(3) }
`,

		// concurrency: captured-map write + Add-in-loop positives,
		// partitioned-slice negative.
		"internal/centrality/conc.go": `package centrality

import "sync"

// BadFanout races on a captured map and grows the WaitGroup per
// iteration: two findings expected.
func BadFanout() map[int]int {
	m := make(map[int]int)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m[i] = i
		}(i)
	}
	wg.Wait()
	return m
}

// GoodFanout partitions writes by the closure parameter and hoists
// Add: no findings.
func GoodFanout() []int {
	out := make([]int, 4)
	var wg sync.WaitGroup
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
	return out
}
`,

		// determinism: global rand positive, threaded rand negative,
		// unsorted map-range positive, sorted map-range negative.
		"internal/exp/det.go": `package exp

import (
	"math/rand"
	"sort"
)

// BadRand uses the global source: finding expected.
func BadRand() int { return rand.Intn(10) }

// GoodRand threads an explicit generator: no finding.
func GoodRand(r *rand.Rand) int { return r.Intn(10) }

// BadOrder returns map keys in iteration order: finding expected.
func BadOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// GoodOrder sorts the collected keys: no finding.
func GoodOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,

		// ignored-errors: discarded Close positive, handled Close and
		// fmt.Println negatives.
		"cmd/tool/main.go": `package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("stdout prints are exempt")
	bad()
	if err := good(); err != nil {
		os.Exit(1)
	}
}

func bad() {
	f, err := os.Open("x")
	if err != nil {
		return
	}
	f.Close()
}

func good() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	return f.Close()
}
`,

		// exported-docs: undocumented exported positives, documented and
		// unexported negatives.
		"internal/core/docs.go": `package core

// Documented has a doc comment: no finding.
func Documented() {}

func Undocumented() {}

type UndocType struct{}

// DocType is documented: no finding.
type DocType struct{}

var UndocVar = 1

// DocVar is documented: no finding.
var DocVar = 2

func unexported() {}
`,
	}
}

// runFixture lints the standard fixture once and caches nothing: each
// test builds its own tree, so findings can't leak between tests.
func runFixture(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	root := writeFixture(t, files)
	diags, err := Run(root, []string{"./..."}, Config{})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return diags
}

// want asserts exactly one finding from the analyzer whose message
// contains each of the substrings.
func want(t *testing.T, diags []Diagnostic, analyzer string, substrs ...string) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Analyzer != analyzer {
			continue
		}
		ok := true
		for _, s := range substrs {
			if !strings.Contains(d.Message, s) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 %s finding containing %q, got %d\nall findings:\n%s",
			analyzer, substrs, n, renderDiags(diags))
	}
}

// reject asserts no finding from the analyzer mentions the substring.
func reject(t *testing.T, diags []Diagnostic, analyzer, substr string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			t.Errorf("unexpected %s finding mentioning %q: %s", analyzer, substr, d)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func TestMutationSafety(t *testing.T) {
	diags := runFixture(t, fixtureFiles())
	want(t, diags, "mutation-safety", "BadMutate", "AddEdge")
	reject(t, diags, "mutation-safety", "GoodClone")
	reject(t, diags, "mutation-safety", "GoodRead")
	reject(t, diags, "mutation-safety", "AllowedMutate") // suppressed by annotation
}

func TestConcurrency(t *testing.T) {
	diags := runFixture(t, fixtureFiles())
	want(t, diags, "concurrency", "captured map", `"m"`)
	want(t, diags, "concurrency", "WaitGroup.Add")
	reject(t, diags, "concurrency", `"out"`) // index-partitioned write is fine
}

func TestDeterminism(t *testing.T) {
	diags := runFixture(t, fixtureFiles())
	want(t, diags, "determinism", "rand.Intn")
	want(t, diags, "determinism", "range over map", "keys")
	// GoodRand's r.Intn and GoodOrder's sorted collection are clean:
	// exactly the two findings above and no more.
	n := 0
	for _, d := range diags {
		if d.Analyzer == "determinism" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("want exactly 2 determinism findings, got %d\n%s", n, renderDiags(diags))
	}
}

func TestIgnoredErrors(t *testing.T) {
	diags := runFixture(t, fixtureFiles())
	want(t, diags, "ignored-errors", "f.Close")
	reject(t, diags, "ignored-errors", "fmt.Println")
	n := 0
	for _, d := range diags {
		if d.Analyzer == "ignored-errors" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 ignored-errors finding, got %d\n%s", n, renderDiags(diags))
	}
}

func TestExportedDocs(t *testing.T) {
	diags := runFixture(t, fixtureFiles())
	want(t, diags, "exported-docs", "function Undocumented")
	want(t, diags, "exported-docs", "type UndocType")
	want(t, diags, "exported-docs", "var UndocVar")
	reject(t, diags, "exported-docs", "Documented")
	reject(t, diags, "exported-docs", "DocType")
	reject(t, diags, "exported-docs", "DocVar")
	reject(t, diags, "exported-docs", "unexported")
}

func TestScopeRestriction(t *testing.T) {
	// The same mutation pattern outside the read-only packages (e.g. a
	// hypothetical internal/tools) must not be flagged: the black-box
	// contract binds measurement code, not graph-construction code.
	files := fixtureFiles()
	files["internal/tools/build.go"] = `package tools

import "fixturemod/internal/graph"

// Grow mutates its parameter, but this package is out of scope.
func Grow(g *graph.Graph) { g.AddEdge(1, 2) }
`
	diags := runFixture(t, files)
	reject(t, diags, "mutation-safety", "Grow")
}

func TestAnalyzerFilter(t *testing.T) {
	root := writeFixture(t, fixtureFiles())
	diags, err := Run(root, []string{"./..."}, Config{Enable: []string{"exported-docs"}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer != "exported-docs" {
			t.Errorf("analyzer filter leaked a %s finding: %s", d.Analyzer, d)
		}
	}
	if len(diags) == 0 {
		t.Error("filtered run found nothing; want the exported-docs findings")
	}
	if _, err := Run(root, nil, Config{Enable: []string{"no-such-analyzer"}}); err == nil {
		t.Error("unknown analyzer name should be an error")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"//promolint:allow mutation-safety", []string{"mutation-safety"}},
		{"// promolint:allow determinism -- seeded elsewhere", []string{"determinism"}},
		{"//promolint:allow a,b", []string{"a", "b"}},
		{"// just a comment", nil},
		{"//promolint:allowx", nil},
	}
	for _, c := range cases {
		got := parseAllow(c.in)
		if len(got) != len(c.want) {
			t.Errorf("parseAllow(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseAllow(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}
