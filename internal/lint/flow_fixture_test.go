package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixtures for the CFG/dataflow analyzers (version-stamp, engine-bypass,
// pool-hygiene, lock-order). Each fixture package carries one flagging
// and at least one passing case per rule, mirroring the real tree's
// layout so relScope-based analyzers engage.

func flowFixtureFiles() map[string]string {
	return map[string]string{
		"go.mod": "module fixturemod\n\ngo 1.22\n",

		// version-stamp: exported Graph mutators must bump on every
		// mutated return path.
		"internal/graph/graph.go": `package graph

// Graph mirrors the real structure the analyzer keys off.
type Graph struct {
	adj     [][]int32
	m       int
	version uint64
}

func (g *Graph) bumpVersion() { g.version++ }

// BadAddEdge has an early mutated return without a bump: finding.
func (g *Graph) BadAddEdge(u, v int) bool {
	if u == v {
		return false
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.m++
	if u > v {
		return true
	}
	g.bumpVersion()
	return true
}

// GoodAddEdge bumps on every mutated path: no finding.
func (g *Graph) GoodAddEdge(u, v int) bool {
	if u == v {
		return false
	}
	g.adj[u] = append(g.adj[u], int32(v))
	g.m++
	g.bumpVersion()
	return true
}

// BadViaHelper mutates through a helper that never bumps: finding.
func (g *Graph) BadViaHelper(u, v int) { g.insertArc(u, v) }

func (g *Graph) insertArc(u, v int) { g.adj[u] = append(g.adj[u], int32(v)) }

// GoodViaHelper mutates through a helper that always bumps: no finding.
func (g *Graph) GoodViaHelper(u, v int) { g.insertAndBump(u, v) }

func (g *Graph) insertAndBump(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
	g.bumpVersion()
}

// GoodClone writes a fresh local's fields, not the receiver's: no
// finding.
func (g *Graph) GoodClone() *Graph {
	c := &Graph{m: g.m}
	c.adj = append([][]int32(nil), g.adj...)
	return c
}

// GoodRead never writes: no finding.
func (g *Graph) GoodRead() int { return g.m }
`,

		// engine-bypass: heavy kernel calls outside the sanctioned
		// packages.
		"internal/centrality/kernels.go": `package centrality

// Closeness is a heavy kernel.
func Closeness() []float64 { return nil }

// BetweennessSampled is a heavy kernel.
func BetweennessSampled(k int) []float64 { return nil }

// Distances is a cheap single-source helper.
func Distances(s int) []int32 { return nil }

// inPackageUse may call kernels freely: the package is in scope.
func inPackageUse() { Closeness() }
`,
		"internal/report/report.go": `package report

import "fixturemod/internal/centrality"

// BadDirect calls a heavy kernel directly: finding.
func BadDirect() []float64 { return centrality.Closeness() }

// BadSampled calls a prefixed heavy kernel: finding.
func BadSampled() []float64 { return centrality.BetweennessSampled(8) }

// GoodCheap calls a single-source helper: no finding.
func GoodCheap() []int32 { return centrality.Distances(0) }

// AllowedBaseline is an annotated intentional baseline: suppressed.
func AllowedBaseline() []float64 {
	//promolint:allow engine-bypass -- fixture differential baseline
	return centrality.Closeness()
}
`,

		// pool-hygiene: Get/Put balance and use-after-Put.
		"internal/engine/pool.go": `package engine

import "sync"

var pool sync.Pool

type buf struct{ b []byte }

func use(*buf) {}

// GoodBalanced gets, uses, puts once: no finding.
func GoodBalanced() {
	v := pool.Get().(*buf)
	use(v)
	pool.Put(v)
}

// GoodDeferred puts through defer: no finding.
func GoodDeferred() {
	v := pool.Get().(*buf)
	defer pool.Put(v)
	use(v)
}

// GoodTransfer returns the value, transferring ownership: no finding.
func GoodTransfer() *buf {
	v := pool.Get().(*buf)
	return v
}

// BadDoublePut may put twice when cond holds: finding.
func BadDoublePut(cond bool) {
	v := pool.Get().(*buf)
	if cond {
		pool.Put(v)
	}
	pool.Put(v)
}

// BadLeak returns without putting on the cond path: finding.
func BadLeak(cond bool) {
	v := pool.Get().(*buf)
	if cond {
		return
	}
	pool.Put(v)
}

// BadUseAfterPut touches the value after it went back: finding.
func BadUseAfterPut() {
	v := pool.Get().(*buf)
	pool.Put(v)
	use(v)
}

// BadClosureAfterPut captures the value after it went back: finding.
func BadClosureAfterPut() func() {
	v := pool.Get().(*buf)
	pool.Put(v)
	return func() { use(v) }
}
`,

		// lock-order: imbalance, double acquisition, AB/BA cycle.
		"internal/engine/locks.go": `package engine

import "sync"

type guarded struct {
	a sync.Mutex
	b sync.Mutex
}

// GoodDefer locks and defers the unlock: no finding.
func (s *guarded) GoodDefer() {
	s.a.Lock()
	defer s.a.Unlock()
}

// GoodPaired locks and unlocks on every path: no finding.
func (s *guarded) GoodPaired(cond bool) int {
	s.a.Lock()
	if cond {
		s.a.Unlock()
		return 1
	}
	s.a.Unlock()
	return 0
}

// BadReturnHolding returns with the lock held on the cond path: finding.
func (s *guarded) BadReturnHolding(cond bool) {
	s.a.Lock()
	if cond {
		return
	}
	s.a.Unlock()
}

// BadDoubleLock re-acquires the exclusive mutex: finding.
func (s *guarded) BadDoubleLock() {
	s.a.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.a.Unlock()
}

// lockAB and lockBA acquire in opposite orders: cycle finding.
func (s *guarded) lockAB() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *guarded) lockBA() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}
`,
	}
}

func TestVersionStamp(t *testing.T) {
	diags := runFixture(t, flowFixtureFiles())
	want(t, diags, "version-stamp", "BadAddEdge")
	want(t, diags, "version-stamp", "BadViaHelper")
	reject(t, diags, "version-stamp", "GoodAddEdge")
	reject(t, diags, "version-stamp", "GoodViaHelper")
	reject(t, diags, "version-stamp", "GoodClone")
	reject(t, diags, "version-stamp", "GoodRead")
	reject(t, diags, "version-stamp", "insertArc") // unexported helpers are summaries, not findings
}

func TestEngineBypass(t *testing.T) {
	diags := runFixture(t, flowFixtureFiles())
	want(t, diags, "engine-bypass", "centrality.Closeness")
	want(t, diags, "engine-bypass", "centrality.BetweennessSampled")
	reject(t, diags, "engine-bypass", "Distances")
	// The in-package call and the annotated baseline stay silent, so the
	// two findings above are the only ones.
	n := 0
	for _, d := range diags {
		if d.Analyzer == "engine-bypass" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("want exactly 2 engine-bypass findings, got %d\n%s", n, renderDiags(diags))
	}
}

func TestPoolHygiene(t *testing.T) {
	diags := runFixture(t, flowFixtureFiles())
	want(t, diags, "pool-hygiene", "Put twice")
	want(t, diags, "pool-hygiene", "without a Put")
	want(t, diags, "pool-hygiene", "used after it was Put")
	want(t, diags, "pool-hygiene", "escapes after it was Put")
	for _, good := range []string{"GoodBalanced", "GoodDeferred", "GoodTransfer"} {
		for _, d := range diags {
			if d.Analyzer == "pool-hygiene" && strings.Contains(d.Pos.Filename, "pool.go") {
				if line := fixtureLineFunc(t, flowFixtureFiles()["internal/engine/pool.go"], d.Pos.Line); line == good {
					t.Errorf("pool-hygiene flagged %s: %s", good, d)
				}
			}
		}
	}
}

func TestLockOrder(t *testing.T) {
	diags := runFixture(t, flowFixtureFiles())
	want(t, diags, "lock-order", "return while still holding", "guarded.a")
	want(t, diags, "lock-order", "not reentrant")
	want(t, diags, "lock-order", "lock-order cycle")
	for _, d := range diags {
		if d.Analyzer != "lock-order" {
			continue
		}
		fn := fixtureLineFunc(t, flowFixtureFiles()["internal/engine/locks.go"], d.Pos.Line)
		if fn == "GoodDefer" || fn == "GoodPaired" {
			t.Errorf("lock-order flagged %s: %s", fn, d)
		}
	}
}

// fixtureLineFunc returns the name of the function declaration enclosing
// the 1-based line in src ("" when outside any function) — fixtures
// assert per-function cleanliness without hardcoding line numbers.
func fixtureLineFunc(t *testing.T, src string, line int) string {
	t.Helper()
	name := ""
	re := regexp.MustCompile(`^func (?:\([^)]*\) )?(\w+)`)
	for i, l := range strings.Split(src, "\n") {
		if i+1 > line {
			break
		}
		if m := re.FindStringSubmatch(l); m != nil {
			name = m[1]
		}
	}
	return name
}

// TestPromodebugTaggedFilesAreAnalyzed is the loader regression test:
// a finding inside a promodebug-gated file must surface, and exactly
// once (the dual-tag run dedupes files shared by both passes).
func TestPromodebugTaggedFilesAreAnalyzed(t *testing.T) {
	files := fixtureFiles()
	files["internal/exp/debug_check.go"] = `//go:build promodebug

package exp

import "math/rand"

// DebugBad draws from the global source under the promodebug tag.
func DebugBad() int { return rand.Intn(3) }
`
	diags := runFixture(t, files)
	n := 0
	for _, d := range diags {
		if d.Analyzer == "determinism" && strings.Contains(d.Pos.Filename, "debug_check.go") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("want exactly 1 determinism finding in the promodebug-tagged file, got %d\n%s",
			n, renderDiags(diags))
	}
	// Untagged findings must not double up either: det.go is seen by
	// both passes but its rand.Intn finding appears once.
	m := 0
	for _, d := range diags {
		if d.Analyzer == "determinism" && strings.Contains(d.Pos.Filename, "det.go") &&
			strings.Contains(d.Message, "rand.Intn") {
			m++
		}
	}
	if m != 1 {
		t.Errorf("want exactly 1 rand.Intn determinism finding in det.go, got %d\n%s",
			m, renderDiags(diags))
	}
}

// TestVersionStampCatchesBumpDeletion encodes the acceptance criterion
// directly against the real tree: deleting any single bumpVersion() call
// from internal/graph's mutators must produce a version-stamp finding.
func TestVersionStampCatchesBumpDeletion(t *testing.T) {
	root, err := moduleRootFromWD()
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(root, "internal", "graph", "graph.go"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^\s*g\.bumpVersion\(\)\n`)
	calls := re.FindAllIndex(src, -1)
	if len(calls) == 0 {
		t.Fatal("no g.bumpVersion() calls found in the real graph.go — the fixture premise broke")
	}

	fixture := func(body string) map[string]string {
		return map[string]string{
			"go.mod":                  "module fixturemod\n\ngo 1.22\n",
			"internal/graph/graph.go": body,
		}
	}

	// The pristine copy must be clean: graph.go is self-contained
	// (stdlib imports only), so it typechecks alone.
	if diags := runVersionStampOnly(t, fixture(string(src))); len(diags) != 0 {
		t.Fatalf("pristine graph.go copy is not clean:\n%s", renderDiags(diags))
	}

	for i, loc := range calls {
		mutated := string(src[:loc[0]]) + string(src[loc[1]:])
		diags := runVersionStampOnly(t, fixture(mutated))
		found := false
		for _, d := range diags {
			if d.Analyzer == "version-stamp" {
				found = true
			}
		}
		if !found {
			t.Errorf("deleting bumpVersion() call %d of %d produced no version-stamp finding", i+1, len(calls))
		}
	}
}

func runVersionStampOnly(t *testing.T, files map[string]string) []Diagnostic {
	t.Helper()
	root := writeFixture(t, files)
	diags, err := Run(root, []string{"./..."}, Config{Enable: []string{"version-stamp"}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return diags
}

func TestDisableFilter(t *testing.T) {
	root := writeFixture(t, fixtureFiles())
	diags, err := Run(root, []string{"./..."}, Config{Disable: []string{"exported-docs"}})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer == "exported-docs" {
			t.Errorf("disabled analyzer still reported: %s", d)
		}
	}
	if len(diags) == 0 {
		t.Error("disabling one analyzer silenced everything")
	}
	if _, err := Run(root, nil, Config{Disable: []string{"no-such-analyzer"}}); err == nil {
		t.Error("unknown analyzer in Disable should be an error")
	}
}

func TestSeverities(t *testing.T) {
	diags := runFixture(t, fixtureFiles())
	for _, d := range diags {
		wantSev := SevError
		if d.Analyzer == "exported-docs" {
			wantSev = SevWarn
		}
		if d.Severity != wantSev {
			t.Errorf("%s finding has severity %q, want %q: %s", d.Analyzer, d.Severity, wantSev, d)
		}
	}
}

func TestAnalyzerCount(t *testing.T) {
	as := Analyzers()
	if len(as) != 16 {
		names := make([]string, len(as))
		for i, a := range as {
			names[i] = a.Name
		}
		t.Fatalf("Analyzers() = %d analyzers %v, want 16", len(as), names)
	}
	seen := make(map[string]bool)
	for _, a := range as {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}
