package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"promonet/internal/lint/flow"
)

// atomicConsistency enforces all-or-nothing atomicity per variable: a
// struct field or package-level variable that is accessed through the
// sync/atomic package-level functions anywhere in the package must
// never be read or written plainly. A mixed access is at best a data
// race and at worst a torn read the race detector only catches when the
// schedule cooperates — the obs metrics registry and the engine's
// counter array rely on this invariant.
//
// The typed atomics (atomic.Uint64 and friends) make the invariant
// structural and are the preferred style; this analyzer exists for the
// raw atomic.AddUint64(&x, ...) form, where the compiler offers no
// protection.
var atomicConsistency = &Analyzer{
	Name:     "atomic-consistency",
	Doc:      "flag plain reads/writes of variables accessed with sync/atomic elsewhere",
	Severity: SevError,
	Run:      runAtomicConsistency,
}

// isRawAtomicCall reports whether call is a package-level sync/atomic
// operation (AddT, LoadT, StoreT, SwapT, CompareAndSwapT) — the typed
// atomic methods have a receiver and are excluded.
func isRawAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	callee := flow.Callee(info, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return false
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	name := callee.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// atomicOperandObj resolves the &x argument of a raw atomic call to the
// variable or field object being operated on, unwrapping index
// expressions (&arr[i] guards the field arr).
func atomicOperandObj(info *types.Info, arg ast.Expr) (types.Object, ast.Node) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil, nil
	}
	e := ast.Unparen(un.X)
	for {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			break
		}
		e = ast.Unparen(ix.X)
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if obj := info.Uses[e.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.IsField() {
				return obj, e
			}
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return obj, e
			}
		}
	}
	return nil, nil
}

func runAtomicConsistency(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: find every raw atomic operation and record the guarded
	// object plus the operand node (so pass 2 does not flag the atomic
	// call's own &x argument).
	guarded := make(map[types.Object]token.Position)
	operand := make(map[ast.Node]bool)
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isRawAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if obj, node := atomicOperandObj(info, call.Args[0]); obj != nil {
				if _, seen := guarded[obj]; !seen {
					guarded[obj] = p.Fset.Position(call.Pos())
				}
				operand[node] = true
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return
	}

	// Pass 2: any other access to a guarded object is a finding.
	for _, file := range p.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if operand[n] {
					return false
				}
				obj := info.Uses[n.Sel]
				if at, ok := guarded[obj]; ok {
					p.Reportf(n.Sel.Pos(),
						"field %s is accessed with sync/atomic (e.g. at %s:%d) and must never be accessed plainly",
						n.Sel.Name, relFile(at.Filename), at.Line)
					return false
				}
			case *ast.Ident:
				if operand[n] {
					return true
				}
				obj := info.Uses[n]
				if at, ok := guarded[obj]; ok {
					p.Reportf(n.Pos(),
						"variable %s is accessed with sync/atomic (e.g. at %s:%d) and must never be accessed plainly",
						n.Name, relFile(at.Filename), at.Line)
				}
			}
			return true
		})
	}
}

// relFile trims a path to its base-two components for compact messages.
func relFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
