package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// A Baseline is a checked-in set of accepted findings. Entries match on
// (module-relative file, analyzer, message) — deliberately not on line
// numbers, so unrelated edits to a file do not invalidate the baseline.
// The flip side is strict staleness: an entry that no longer matches any
// current finding is dead weight that would silently mask a future
// regression, so Apply surfaces it and the CLI treats it as an error.
type Baseline struct {
	// Findings are the accepted findings, in any order.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	File     string `json:"file"` // module-relative, slash-separated
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// LoadBaseline reads a baseline file. A missing file is not an error:
// it loads as the empty baseline, so the flag can point at a path that
// a clean repo never needs to create.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// Apply suppresses the diagnostics the baseline accepts and reports the
// entries that matched nothing — stale entries that should be deleted.
// One entry suppresses every current finding it matches.
func (b *Baseline) Apply(moduleRoot string, diags []Diagnostic) (kept []Diagnostic, stale []BaselineEntry) {
	matched := make([]bool, len(b.Findings))
	for _, d := range diags {
		rel := baselineRel(moduleRoot, d.Pos.Filename)
		hit := false
		for i, e := range b.Findings {
			if e.File == rel && e.Analyzer == d.Analyzer && e.Message == d.Message {
				matched[i] = true
				hit = true
			}
		}
		if !hit {
			kept = append(kept, d)
		}
	}
	for i, e := range b.Findings {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}

// baselineRel normalizes a diagnostic filename to the module-relative
// slash form baseline entries use.
func baselineRel(moduleRoot, filename string) string {
	if rel, err := filepath.Rel(moduleRoot, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}
