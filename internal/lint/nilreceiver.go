package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"promonet/internal/lint/flow"
)

// nilReceiver enforces the nil-safe method contract of types that are
// deliberately usable through nil pointers — today the obs Span, whose
// disabled-tracing fast path hands out nil spans by design. The
// contract has two sides:
//
//   - In the defining package, every method declared nil-safe must
//     begin with a guard: `if recv == nil { return ... }`. Anything else
//     (a later guard, a guard the method forgot) is a finding — the
//     guard IS the API contract.
//   - At every call site in the module, a method invoked on a receiver
//     that may be nil — it is reachable from an obs.Start binding, a nil
//     literal, or an uninitialized var, per the reaching-definitions
//     solver — must belong to the declared nil-safe set.
//
// The analysis is path-insensitive: a receiver that was nil-checked
// with an if still counts as possibly nil. Guard-protected calls to
// non-nil-safe methods are rare by design; annotate them with
// //promolint:allow nil-receiver and a justification.
var nilReceiver = &Analyzer{
	Name:     "nil-receiver",
	Doc:      "flag non-nil-safe methods called on possibly-nil receivers of nil-safe types",
	Severity: SevError,
	Run:      runNilReceiver,
}

// nilSafeType declares one type whose pointer methods partially
// tolerate nil receivers.
type nilSafeType struct {
	// pkgSuffix matches the defining package by import-path suffix, so
	// fixture modules behave like the real tree.
	pkgSuffix string
	// typeName is the named type (methods are on *typeName).
	typeName string
	// methods is the declared nil-safe set.
	methods map[string]bool
}

// nilSafeTypes is the declared nil-safe registry. Extend it when a new
// type adopts the nil-receiver no-op pattern.
var nilSafeTypes = []nilSafeType{
	{
		pkgSuffix: "internal/obs",
		typeName:  "Span",
		methods:   map[string]bool{"End": true, "Int": true, "Int64": true, "Str": true, "Float": true},
	},
}

// nilSafeFor looks up the registry entry for a named type.
func nilSafeFor(obj *types.TypeName) *nilSafeType {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	path := obj.Pkg().Path()
	for i := range nilSafeTypes {
		e := &nilSafeTypes[i]
		if obj.Name() == e.typeName &&
			(path == e.pkgSuffix || strings.HasSuffix(path, "/"+e.pkgSuffix)) {
			return e
		}
	}
	return nil
}

// pointerToNilSafe resolves t to a registry entry when t is a pointer
// to a registered named type.
func pointerToNilSafe(t types.Type) *nilSafeType {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	return nilSafeFor(named.Obj())
}

func runNilReceiver(p *Pass) {
	checkNilGuardContracts(p)
	checkNilReceiverCalls(p)
}

// checkNilGuardContracts verifies, in the defining package, that every
// declared nil-safe method opens with its nil guard.
func checkNilGuardContracts(p *Pass) {
	info := p.Pkg.Info
	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recvField := fd.Recv.List[0]
			star, ok := recvField.Type.(*ast.StarExpr)
			if !ok {
				continue
			}
			tid, ok := ast.Unparen(star.X).(*ast.Ident)
			if !ok {
				continue
			}
			tobj, _ := info.Uses[tid].(*types.TypeName)
			entry := nilSafeFor(tobj)
			if entry == nil || !entry.methods[fd.Name.Name] {
				continue
			}
			if len(recvField.Names) != 1 || recvField.Names[0].Name == "_" {
				p.Reportf(fd.Pos(), "nil-safe method (*%s).%s has no named receiver, so it cannot begin with the required nil guard",
					entry.typeName, fd.Name.Name)
				continue
			}
			if !startsWithNilGuard(info, fd.Body, info.Defs[recvField.Names[0]]) {
				p.Reportf(fd.Pos(), "nil-safe method (*%s).%s must begin with `if %s == nil { return ... }` — callers rely on the nil no-op contract",
					entry.typeName, fd.Name.Name, recvField.Names[0].Name)
			}
		}
	}
}

// startsWithNilGuard reports whether body's first statement is
// `if recv == nil { ...terminating in return... }`.
func startsWithNilGuard(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	if recv == nil || len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	bin, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == recv
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isRecv(bin.X) && isNil(bin.Y) || isNil(bin.X) && isRecv(bin.Y)) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	_, ok = ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt)
	return ok
}

// checkNilReceiverCalls flags, everywhere in the module, calls to
// non-nil-safe methods through receivers that may be nil.
func checkNilReceiverCalls(p *Pass) {
	nilSources := nilSpanSources(p)

	for _, file := range p.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCallsInBody(p, fd.Body, flow.ParamIdents(fd.Recv, fd.Type), nilSources)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					checkCallsInBody(p, lit.Body, flow.ParamIdents(nil, lit.Type), nilSources)
				}
				return true
			})
		}
	}
}

// checkCallsInBody runs the reaching-defs-based call-site check over
// one function body.
func checkCallsInBody(p *Pass, body *ast.BlockStmt, params []*ast.Ident, nilSources map[*types.Func]bool) {
	info := p.Pkg.Info

	// Cheap pre-scan: only build the CFG and solve reaching defs when
	// the body actually calls a method on a nil-safe pointer type.
	interesting := false
	flow.WalkNodes(body, func(n ast.Node) bool {
		if interesting {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := exprType(info, sel.X); t != nil && pointerToNilSafe(t) != nil {
				interesting = true
			}
		}
		return true
	})
	if !interesting {
		return
	}

	cfg := flow.New(body, info)
	rd := flow.NewReachingDefs(cfg, info, params, body)

	flow.WalkNodes(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		t := exprType(info, recv)
		if t == nil {
			return true
		}
		entry := pointerToNilSafe(t)
		if entry == nil || entry.methods[sel.Sel.Name] {
			return true
		}
		for _, d := range rd.At(recv) {
			if at := nilSourceDef(info, d, nilSources); at != "" {
				p.Reportf(call.Pos(),
					"(*%s).%s is not nil-safe, but %q may be nil here (%s on line %d)",
					entry.typeName, sel.Sel.Name, recv.Name, at,
					p.Fset.Position(d.Pos).Line)
				return true
			}
		}
		return true
	})
}

// nilSourceDef classifies a definition as a possible nil source,
// returning a short description ("" when the def cannot be nil as far
// as this analysis knows).
func nilSourceDef(info *types.Info, d *flow.Def, nilSources map[*types.Func]bool) string {
	if d.Entry {
		return "" // parameters are the caller's responsibility
	}
	switch node := d.Node.(type) {
	case *ast.AssignStmt:
		for _, rhs := range node.Rhs {
			if call := sourceExprCall(rhs, func(c *ast.CallExpr) bool {
				if isObsStartCall(info, c) {
					return true
				}
				callee := flow.Callee(info, c)
				return callee != nil && nilSources[callee]
			}); call != nil {
				return "nil while tracing is disabled: bound from obs.Start"
			}
			if isNilIdent(info, rhs) {
				return "assigned nil"
			}
		}
	case *ast.DeclStmt:
		hasValue := false
		ast.Inspect(node, func(m ast.Node) bool {
			if vs, ok := m.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
				hasValue = true
			}
			return !hasValue
		})
		if !hasValue {
			return "declared without a value, so zero (nil)"
		}
	}
	return ""
}

// nilSpanSources computes, by fixpoint, the in-package functions whose
// results may be a nil span: they return a value derived from obs.Start
// (nil while tracing is off), a nil literal typed as a nil-safe
// pointer, or the result of another nil source.
func nilSpanSources(p *Pass) map[*types.Func]bool {
	info := p.Pkg.Info
	cg := flow.NewCallGraph(info, p.Pkg.Files)
	sources := make(map[*types.Func]bool)

	isSourceCall := func(call *ast.CallExpr) bool {
		if isObsStartCall(info, call) {
			return true
		}
		callee := flow.Callee(info, call)
		return callee != nil && sources[callee]
	}

	returnsNilable := func(fd *ast.FuncDecl) bool {
		// Only functions that can return a nil-safe pointer matter.
		obj, _ := info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			return false
		}
		sig := obj.Type().(*types.Signature)
		yieldsNilSafe := false
		for i := 0; i < sig.Results().Len(); i++ {
			if pointerToNilSafe(sig.Results().At(i).Type()) != nil {
				yieldsNilSafe = true
			}
		}
		if !yieldsNilSafe {
			return false
		}
		if returnsSpanValue(info, fd, isSourceCall) {
			return true
		}
		found := false
		flow.WalkNodes(fd.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for i, res := range ret.Results {
				if i >= sig.Results().Len() {
					break
				}
				if pointerToNilSafe(sig.Results().At(i).Type()) == nil {
					continue
				}
				if isNilIdent(info, res) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	for changed := true; changed; {
		changed = false
		for f, fd := range cg.Decls {
			if !sources[f] && returnsNilable(fd) {
				sources[f] = true
				changed = true
			}
		}
	}
	return sources
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	if obj := info.Uses[id]; obj != nil {
		_, isNil := obj.(*types.Nil)
		return isNil
	}
	return true // untyped / partial info: trust the spelling
}

// exprType is a tolerant info.Types lookup.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
