package bench

import (
	"math/rand"
	"testing"

	"promonet/internal/centrality"
	"promonet/internal/core"
	"promonet/internal/datasets"
	"promonet/internal/diffusion"
	"promonet/internal/greedy"
)

// TestEndToEndScenario exercises the full pipeline across modules the
// way a downstream user would: synthesize a host, promote a target for
// every headline measure, verify the theory's promises, compare against
// the structure-aware baseline, confirm the owner can detect the
// manipulation, and check the diffusion consequences.
func TestEndToEndScenario(t *testing.T) {
	profile, err := datasets.ByName("WIKI")
	if err != nil {
		t.Fatal(err)
	}
	host := profile.Build(99, 0.02)
	if !host.IsConnected() {
		t.Fatal("host must be connected")
	}

	measures := []core.Measure{
		core.BetweennessMeasure{Counting: centrality.PairsUnordered},
		core.CorenessMeasure{},
		core.ClosenessMeasure{},
		core.EccentricityMeasure{},
	}
	for _, m := range measures {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			// A low-ranked target.
			scores := m.Scores(host)
			target := 0
			for v := range scores {
				if scores[v] < scores[target] {
					target = v
				}
			}
			// 1. Guaranteed promotion must work end to end.
			g2, o, err := core.PromoteGuaranteed(host, m, target)
			if err != nil {
				t.Fatal(err)
			}
			if o == nil {
				t.Skip("target already rank 1")
			}
			if !o.Effective() {
				t.Fatalf("guaranteed promotion ineffective: %v", o)
			}
			if !o.Check.Gain || !o.Check.Dominance {
				t.Fatalf("principle check failed: %+v", o.Check)
			}
			// 2. The original topology must be frozen.
			host.Edges(func(u, v int) bool {
				if !g2.HasEdge(u, v) {
					t.Fatalf("original edge (%d, %d) vanished", u, v)
				}
				return true
			})
			// 3. The owner must detect and classify the manipulation.
			report, err := core.Detect(host, g2)
			if err != nil {
				t.Fatal(err)
			}
			if !report.Suspicious || report.SuspectedStrategy != o.Strategy.Type {
				t.Errorf("detection failed: %v (applied %v)", report, o.Strategy.Type)
			}
			if report.MaxDegreeJumpNode != target {
				t.Errorf("detector fingered node %d, target was %d", report.MaxDegreeJumpNode, target)
			}
		})
	}

	// 4. Baseline cross-check for betweenness: both methods improve the
	// target's score on the same host.
	m := core.BetweennessMeasure{Counting: centrality.PairsUnordered}
	before := m.Scores(host)
	target := 0
	for v := range before {
		if before[v] < before[target] {
			target = v
		}
	}
	_, blackBox, err := core.Promote(host, m, target, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	_, gr, err := greedy.Improve(host, target, 6, greedy.Options{
		Counting: centrality.PairsUnordered, CandidateSample: 24, Rand: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if blackBox.ScoreVariation <= 0 {
		t.Error("black-box promotion did not raise the betweenness score")
	}
	if gr.After[target] <= gr.Before[target] {
		t.Error("greedy baseline did not raise the betweenness score")
	}

	// 5. Diffusion consequence: with transmission probability 1 the
	// cascade floods the component, so the promoted graph's reach is
	// exactly the original's plus the 16 pendants.
	g2, _, err := (core.Strategy{Target: target, Size: 16, Type: core.MultiPoint}).Apply(host)
	if err != nil {
		t.Fatal(err)
	}
	beforeReach := diffusion.CascadeSize(host, rand.New(rand.NewSource(3)), []int{target}, 1.0, 1)
	afterReach := diffusion.CascadeSize(g2, rand.New(rand.NewSource(3)), []int{target}, 1.0, 1)
	if afterReach != beforeReach+16 {
		t.Errorf("flood reach = %v, want %v + 16", afterReach, beforeReach)
	}
	// And the target's own SI coverage time is unchanged — pendants sit
	// one hop away (Lemma S.12's frozen distances in diffusion form).
	if bt, at := diffusion.SpreadTime(host, target, 0.5), diffusion.SpreadTime(g2, target, 0.5); at > bt+1 {
		t.Errorf("target's 50%% coverage time degraded: %d -> %d", bt, at)
	}
}
